// Alert rule engine: user-supplied thresholds evaluated live against the
// event journal, so a production run can page an operator the moment
// variance appears instead of after the report prints.
//
// Rules are small text expressions parsed from `--alert-rule=`:
//
//   variance_ratio > 1.2 for 3        # 3 consecutive windows above 1.2
//   worst_cell < 0.7                  # any window with a cell this slow
//   region_count >= 2 for 2
//   factor=io contribution > 0.25     # diagnosis blames io for >25%
//   shed_count > 0                    # ingest plane shed batches this window
//
// Window metrics (variance_ratio, worst_cell, region_count, coverage) come
// from each "window" journal event's detection-health fields; factor rules
// match "diagnosis_finding" events by factor name against the finding's
// share of the window's slowdown.  A rule with `for N` must hold for N
// consecutive windows before it fires, then re-arms once the condition
// breaks — so a sustained problem produces one alert, not one per window.
//
// Fired alerts go to every attached AlertSink: StderrAlertSink (tagged
// WARN line), JournalAlertSink (an "alert" event back into the journal —
// re-entrancy is handled by the journal itself), and WebhookFileSink (a
// JSONL file stub standing in for an HTTP webhook).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/journal.hpp"

namespace vapro::obs {

struct AlertRule {
  enum class Op { kGt, kLt, kGe, kLe };

  std::string text;       // original spec, echoed in alerts
  std::string metric;     // "variance_ratio" | "worst_cell" | "region_count"
                          // | "coverage" | "factor"
  std::string factor;     // factor name when metric == "factor"
  Op op = Op::kGt;
  double threshold = 0.0;
  int for_windows = 1;    // consecutive windows the condition must hold

  bool compare(double value) const;
};

// Parses one rule spec; on failure returns false and sets `error`.
bool parse_alert_rule(const std::string& spec, AlertRule* out,
                      std::string* error);

struct Alert {
  std::string rule_text;
  std::string metric;       // includes the factor name for factor rules
  double value = 0.0;       // the observation that completed the streak
  double threshold = 0.0;
  std::int64_t window = -1;
  double virtual_time = 0.0;
};

class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void on_alert(const Alert& alert) = 0;
};

// One WARN log line per alert, tagged "alerts".
class StderrAlertSink final : public AlertSink {
 public:
  void on_alert(const Alert& alert) override;
};

// Re-emits the alert as an "alert" journal event (type, rule, metric,
// value, threshold) so the journal is a complete record of the run.
class JournalAlertSink final : public AlertSink {
 public:
  explicit JournalAlertSink(Journal* journal) : journal_(journal) {}
  void on_alert(const Alert& alert) override;

 private:
  Journal* journal_;
};

// Webhook stub: appends one JSON object per alert to a file (creating
// parent directories), the shape an HTTP webhook would POST.
class WebhookFileSink final : public AlertSink {
 public:
  explicit WebhookFileSink(const std::string& path);
  bool ok() const { return ok_; }
  void on_alert(const Alert& alert) override;

 private:
  std::ofstream out_;
  bool ok_ = false;
  std::mutex mu_;
};

// Evaluates rules against the journal's event stream (subscribe with
// journal->add_sink(&engine)).  Not itself thread-safe beyond what the
// journal's serialized dispatch provides.
class AlertEngine final : public JournalSink {
 public:
  void add_rule(AlertRule rule);
  // Borrowed; must outlive the engine's use.
  void add_alert_sink(AlertSink* sink);

  void on_event(const JournalEvent& event) override;

  std::size_t rules() const { return states_.size(); }
  std::uint64_t alerts_fired() const { return fired_; }
  // Sink deliveries lost to injected "alerts.dispatch" drops or sinks that
  // threw; firing state is unaffected (a lost delivery never re-fires).
  std::uint64_t dispatch_faults() const { return dispatch_faults_; }

 private:
  struct RuleState {
    AlertRule rule;
    int streak = 0;          // consecutive windows the condition held
    bool active = false;     // fired and not yet re-armed
    // Factor rules: latest matching observation within the current window.
    bool factor_hit = false;
    double factor_value = 0.0;
  };
  void evaluate_window(RuleState& st, const JournalEvent& window_event);
  void fire(RuleState& st, double value, const JournalEvent& event);

  std::vector<RuleState> states_;
  std::vector<AlertSink*> sinks_;
  std::uint64_t fired_ = 0;
  std::uint64_t dispatch_faults_ = 0;
  // Ingest-plane drops ("shed" + "net_drop" events) since the last window
  // event — the observation behind `shed_count` rules.
  std::uint64_t shed_in_window_ = 0;
};

}  // namespace vapro::obs
