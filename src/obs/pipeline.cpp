#include "src/obs/pipeline.hpp"

#include <cmath>
#include <sstream>

#include "src/util/log.hpp"

namespace vapro::obs {

namespace {
void append_double(std::ostringstream& oss, double v) {
  if (std::isfinite(v)) {
    oss << v;
  } else {
    oss << "null";
  }
}
}  // namespace

void CollectingSink::on_window(const PipelineStats& stats) {
  windows_.push_back(stats);
}

PipelineStats CollectingSink::totals() const {
  PipelineStats t;
  for (const PipelineStats& w : windows_) {
    t.window = w.window;
    t.virtual_time = w.virtual_time;
    t.diagnosis_stage = w.diagnosis_stage;
    t.fragments_drained += w.fragments_drained;
    t.carry_ins += w.carry_ins;
    t.new_states += w.new_states;
    t.clusters_formed += w.clusters_formed;
    t.rare_clusters += w.rare_clusters;
    t.cluster_shards = w.cluster_shards;  // a config, not a volume: keep last
    t.drain_seconds += w.drain_seconds;
    t.stg_seconds += w.stg_seconds;
    t.cluster_seconds += w.cluster_seconds;
    t.normalize_seconds += w.normalize_seconds;
    t.deposit_seconds += w.deposit_seconds;
    t.diagnose_seconds += w.diagnose_seconds;
    t.publish_seconds += w.publish_seconds;
    t.queue_wait_seconds += w.queue_wait_seconds;
  }
  return t;
}

std::string CollectingSink::to_json() const {
  std::ostringstream oss;
  oss << '[';
  bool first = true;
  for (const PipelineStats& w : windows_) {
    if (!first) oss << ',';
    first = false;
    oss << "{\"window\":" << w.window << ",\"virtual_time\":";
    append_double(oss, w.virtual_time);
    oss << ",\"fragments_drained\":" << w.fragments_drained
        << ",\"carry_ins\":" << w.carry_ins
        << ",\"new_states\":" << w.new_states
        << ",\"clusters_formed\":" << w.clusters_formed
        << ",\"rare_clusters\":" << w.rare_clusters
        << ",\"cluster_shards\":" << w.cluster_shards
        << ",\"diagnosis_stage\":" << w.diagnosis_stage << ",\"stages\":{";
    const std::pair<const char*, double> stages[] = {
        {"drain", w.drain_seconds},       {"stg", w.stg_seconds},
        {"cluster", w.cluster_seconds},   {"normalize", w.normalize_seconds},
        {"deposit", w.deposit_seconds},   {"diagnose", w.diagnose_seconds},
        {"publish", w.publish_seconds},   {"queue_wait", w.queue_wait_seconds},
    };
    bool sfirst = true;
    for (const auto& [name, secs] : stages) {
      if (!sfirst) oss << ',';
      sfirst = false;
      oss << '"' << name << "\":";
      append_double(oss, secs);
    }
    oss << "},\"total_seconds\":";
    append_double(oss, w.total_seconds());
    oss << '}';
  }
  oss << ']';
  return oss.str();
}

void LoggingSink::on_window(const PipelineStats& stats) {
  VAPRO_LOG_TAG(::vapro::util::LogLevel::kDebug, "obs")
      << "window " << stats.window << " @" << stats.virtual_time << "s: "
      << stats.fragments_drained << " fragments (+" << stats.carry_ins
      << " carry), " << stats.clusters_formed << " clusters ("
      << stats.rare_clusters << " rare), S" << stats.diagnosis_stage << ", "
      << stats.total_seconds() * 1e3 << " ms tool time";
}

}  // namespace vapro::obs
