#include "src/obs/context.hpp"

#include <fstream>
#include <sstream>

namespace vapro::obs {

TraceRecorder* ObsContext::enable_trace() {
  if (!trace_) trace_ = std::make_unique<TraceRecorder>();
  return trace_.get();
}

void ObsContext::add_sink(PipelineSink* sink) {
  std::lock_guard<std::mutex> lock(emit_mu_);
  extra_sinks_.push_back(sink);
}

void ObsContext::emit_window(const PipelineStats& stats) {
  std::lock_guard<std::mutex> lock(emit_mu_);
  windows_.on_window(stats);
  for (PipelineSink* sink : extra_sinks_) sink->on_window(stats);
}

std::string ObsContext::metrics_json() const {
  std::ostringstream oss;
  oss << "{\"metrics\":" << metrics_.to_json()
      << ",\"windows\":" << windows_.to_json()
      << ",\"overhead\":" << overhead_.to_json() << '}';
  return oss.str();
}

bool ObsContext::write_metrics_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << metrics_json();
  return static_cast<bool>(out);
}

bool ObsContext::write_trace_json(const std::string& path) const {
  if (!trace_) return false;
  return trace_->write_json(path);
}

}  // namespace vapro::obs
