#include "src/obs/context.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/testing/fault.hpp"
#include "src/util/fs.hpp"

namespace vapro::obs {

ObsContext::~ObsContext() {
  // Stop serving before any member the route handlers might read dies.
  if (exposition_) exposition_->stop();
  // Flush only the file sink the context owns: borrowed sinks (alert
  // engines, test collectors) are routinely declared after the context and
  // are already gone by now — fanning out through the journal here would
  // call through their dead vptrs.
  if (journal_file_) journal_file_->flush();
  if (journal_segments_) journal_segments_->flush();
}

TraceRecorder* ObsContext::enable_trace() {
  if (!trace_) trace_ = std::make_unique<TraceRecorder>();
  return trace_.get();
}

Journal* ObsContext::enable_journal() {
  if (!journal_) journal_ = std::make_unique<Journal>();
  return journal_.get();
}

bool ObsContext::attach_journal_file(const std::string& path) {
  Journal* journal = enable_journal();
  auto sink = std::make_unique<JournalFileSink>(path);
  if (!sink->ok()) return false;
  journal_file_ = std::move(sink);
  journal->add_sink(journal_file_.get());
  return true;
}

bool ObsContext::attach_journal_segments(SegmentOptions options) {
  Journal* journal = enable_journal();
  auto sink = std::make_unique<JournalSegmentSink>(std::move(options));
  if (!sink->ok()) return false;
  journal_segments_ = std::move(sink);
  journal->add_sink(journal_segments_.get());
  return true;
}

ExpositionServer* ObsContext::start_exposition(int port, std::string* error) {
  if (exposition_ && exposition_->running()) return exposition_.get();
  auto server = std::make_unique<ExpositionServer>();
  if (!server->start(port, error)) return nullptr;
  // Raw pointer for handler captures: they can fire between add_route and
  // the exposition_ assignment below, when exposition_ is still null.
  ExpositionServer* raw = server.get();

  // Endpoint index so a bare curl of the port discovers the surface
  // (including /v1 routes registered later by servers) instead of a 404.
  server->add_route("/", [raw] {
    HttpResponse resp;
    resp.content_type = "application/json";
    std::ostringstream body;
    body << "{\"service\":\"vapro\",\"endpoints\":[";
    bool first = true;
    for (const std::string& p : raw->route_paths()) {
      if (!first) body << ',';
      first = false;
      body << '"' << p << '"';
    }
    body << "]}";
    resp.body = body.str();
    return resp;
  });

  server->add_route("/metrics", [this] {
    HttpResponse resp;
    resp.content_type = kPrometheusContentType;
    resp.body = render_prometheus(metrics_);
    // A few context-level samples the registry does not own.
    std::ostringstream extra;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", overhead_.tool_seconds());
    extra << "# TYPE vapro_obs_tool_seconds gauge\nvapro_obs_tool_seconds "
          << buf << '\n';
    std::snprintf(buf, sizeof(buf), "%.17g", uptime_seconds());
    extra << "# TYPE vapro_obs_uptime_seconds gauge\nvapro_obs_uptime_seconds "
          << buf << '\n';
    extra << "# TYPE vapro_obs_journal_events_total counter\n"
          << "vapro_obs_journal_events_total "
          << (journal_ ? journal_->events_emitted() : 0) << '\n';
    resp.body += extra.str();
    return resp;
  });

  server->add_route("/healthz", [this, raw] {
    HttpResponse resp;
    resp.content_type = "application/json";
    std::ostringstream body;
    char buf[40];
    body << "{\"status\":\"ok\",\"uptime_seconds\":";
    std::snprintf(buf, sizeof(buf), "%.3f", uptime_seconds());
    body << buf << ",\"windows\":" << windows_emitted()
         << ",\"last_window_age_seconds\":";
    const double age = last_window_age_seconds();
    if (age < 0.0) {
      body << "null";
    } else {
      std::snprintf(buf, sizeof(buf), "%.3f", age);
      body << buf;
    }
    body << ",\"journal_events\":"
         << (journal_ ? journal_->events_emitted() : 0);
    // Staged-pipeline queue depth, when an AnalysisServer is pipelining
    // through this context (find, don't create: a non-pipelined process
    // should not grow a zero gauge just because somebody probed /healthz).
    body << ",\"pipeline_depth\":";
    if (const Gauge* depth = metrics_.find_gauge("vapro.pipeline.queue_depth"))
      body << static_cast<std::int64_t>(depth->value());
    else
      body << "null";
    body << ",\"fault_injection\":"
         << (testing::fault_injection_compiled() ? "true" : "false");
    body << ",\"endpoints\":[";
    bool first = true;
    for (const std::string& p : raw->route_paths()) {
      if (!first) body << ',';
      first = false;
      body << '"' << p << '"';
    }
    body << "]}";
    resp.body = body.str();
    return resp;
  });

  // Readiness, distinct from liveness: /healthz answers "is the process
  // up", /readyz answers "should this instance take more traffic".  503
  // while the ingest plane is shedding (vapro.net.degraded), while the
  // admission queues are saturated, or after the journal file has gone
  // unwritable — a load balancer drains the instance while detection keeps
  // running on what was already admitted.  Find, don't create: a process
  // without an ingest plane must not fail readiness over absent gauges.
  server->add_route("/readyz", [this] {
    HttpResponse resp;
    resp.content_type = "application/json";
    bool degraded = false;
    if (const Gauge* g = metrics_.find_gauge("vapro.net.degraded"))
      degraded = g->value() > 0.0;
    bool saturated = false;
    const Gauge* depth = metrics_.find_gauge("vapro.net.queue_depth");
    const Gauge* capacity = metrics_.find_gauge("vapro.net.queue_capacity");
    if (depth && capacity && capacity->value() > 0.0)
      saturated = depth->value() >= capacity->value();
    const bool journal_ok = !journal_file_ || journal_file_->ok();
    const bool ready = !degraded && !saturated && journal_ok;
    resp.status = ready ? 200 : 503;
    std::ostringstream body;
    body << "{\"status\":\"" << (ready ? "ready" : "not_ready")
         << "\",\"degraded\":" << (degraded ? "true" : "false")
         << ",\"admission_saturated\":" << (saturated ? "true" : "false")
         << ",\"journal_writable\":" << (journal_ok ? "true" : "false")
         << '}';
    resp.body = body.str();
    return resp;
  });

  exposition_ = std::move(server);
  return exposition_.get();
}

void ObsContext::add_sink(PipelineSink* sink) {
  std::lock_guard<std::mutex> lock(emit_mu_);
  extra_sinks_.push_back(sink);
}

void ObsContext::emit_window(const PipelineStats& stats) {
  {
    std::lock_guard<std::mutex> lock(emit_mu_);
    windows_.on_window(stats);
    for (PipelineSink* sink : extra_sinks_) sink->on_window(stats);
  }
  windows_emitted_.fetch_add(1, std::memory_order_relaxed);
  last_window_ns_.store(
      static_cast<std::int64_t>((clock_->now_seconds() - epoch_seconds_) * 1e9),
      std::memory_order_relaxed);
  // Flush-on-window: every journaled conclusion of a finished window is
  // durable before the next window starts.
  if (journal_) journal_->flush();
}

double ObsContext::last_window_age_seconds() const {
  const std::int64_t last = last_window_ns_.load(std::memory_order_relaxed);
  if (last < 0) return -1.0;
  const std::int64_t now_ns = static_cast<std::int64_t>(
      (clock_->now_seconds() - epoch_seconds_) * 1e9);
  return static_cast<double>(now_ns - last) * 1e-9;
}

double ObsContext::uptime_seconds() const {
  return clock_->now_seconds() - epoch_seconds_;
}

std::string ObsContext::metrics_json() const {
  std::ostringstream oss;
  oss << "{\"metrics\":" << metrics_.to_json()
      << ",\"windows\":" << windows_.to_json()
      << ",\"overhead\":" << overhead_.to_json() << '}';
  return oss.str();
}

bool ObsContext::write_metrics_json(const std::string& path) const {
  util::ensure_parent_dirs(path);
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << metrics_json();
  return static_cast<bool>(out);
}

bool ObsContext::write_trace_json(const std::string& path) const {
  if (!trace_) return false;
  util::ensure_parent_dirs(path);
  return trace_->write_json(path);
}

}  // namespace vapro::obs
