#include "src/obs/journal_segment.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "src/testing/fault.hpp"
#include "src/util/crc32.hpp"
#include "src/util/fs.hpp"

namespace vapro::obs {

namespace {

namespace fs = std::filesystem;

void store_le32(std::uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

// One on-disk record for `payload` (a JSON line without its newline):
// framed with length+CRC in binary mode, newline-terminated in JSONL mode.
std::string encode_record(const std::string& payload, bool binary) {
  if (!binary) return payload + '\n';
  std::string out;
  out.reserve(payload.size() + 8);
  store_le32(static_cast<std::uint32_t>(payload.size()), &out);
  store_le32(util::crc32(payload.data(), payload.size()), &out);
  out += payload;
  return out;
}

std::string header_payload(std::uint64_t dropped_events) {
  std::ostringstream oss;
  oss << "{\"type\":\"journal_header\",\"schema\":\"" << kJournalSchemaName
      << "\",\"schema_version\":" << kJournalSchemaVersion;
  if (dropped_events > 0) oss << ",\"dropped_events\":" << dropped_events;
  oss << '}';
  return oss.str();
}

bool is_segment_name(const std::string& name) {
  if (name.rfind("journal-", 0) != 0) return false;
  return name.size() > 6 && (name.ends_with(".vjseg") || name.ends_with(".jsonl"));
}

}  // namespace

std::string journal_segment_name(std::size_t index, bool binary) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "journal-%06zu.%s", index,
                binary ? "vjseg" : "jsonl");
  return buf;
}

// --- JournalSegmentSink ---------------------------------------------------

JournalSegmentSink::JournalSegmentSink(SegmentOptions options)
    : options_(std::move(options)) {
  std::lock_guard<std::mutex> lock(mu_);
  ok_ = open_segment_locked();
}

JournalSegmentSink::~JournalSegmentSink() {
  if (file_) std::fclose(file_);
}

std::string JournalSegmentSink::active_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paths_.empty() ? std::string() : paths_.back();
}

std::vector<std::string> JournalSegmentSink::segment_paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paths_;
}

std::size_t JournalSegmentSink::segments_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paths_.size();
}

bool JournalSegmentSink::open_segment_locked() {
  const std::string path =
      options_.directory + "/" +
      journal_segment_name(paths_.size(), options_.binary);
  // ensure_parent_dirs creates everything above the file — which is the
  // segment directory itself.
  util::ensure_parent_dirs(path);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  std::string bytes;
  if (options_.binary)
    bytes.assign(kJournalBinaryMagic, sizeof(kJournalBinaryMagic));
  bytes += encode_record(header_payload(0), options_.binary);
  if (std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    return false;
  }
  if (file_) std::fclose(file_);
  file_ = f;
  paths_.push_back(path);
  segment_bytes_ = bytes.size();
  segment_records_ = 0;
  return true;
}

void JournalSegmentSink::sync_locked() {
  if (!file_) return;
  std::fflush(file_);
  ::fsync(fileno(file_));
}

bool JournalSegmentSink::should_rotate_locked(std::size_t record_bytes,
                                              double virtual_time) const {
  // Never rotate an event-less segment: a record larger than the size cap
  // must still land somewhere, and rotation loops would otherwise spin.
  if (segment_records_ == 0) return false;
  if (options_.max_segment_bytes > 0 &&
      segment_bytes_ + record_bytes > options_.max_segment_bytes)
    return true;
  if (options_.max_segment_seconds > 0.0 &&
      virtual_time - segment_open_vt_ >= options_.max_segment_seconds)
    return true;
  return false;
}

void JournalSegmentSink::on_event(const JournalEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return;
  const std::string record =
      encode_record(event.to_json_line(), options_.binary);
  if (should_rotate_locked(record.size(), event.virtual_time)) {
    // The finished segment must be durable before the switch; on rotation
    // failure the active segment simply keeps growing and the next write
    // retries.
    sync_locked();
    if (VAPRO_FAULT("journal.rotate") == testing::FaultAction::kFail ||
        !open_segment_locked()) {
      ++rotate_faults_;
    }
  }
  switch (VAPRO_FAULT("journal.write")) {
    case testing::FaultAction::kShortWrite:
      // Torn write: a prefix of the frame reaches the disk and the writer
      // dies.  The sink goes quiet like a crashed process; the reader's
      // torn-tail recovery drops the partial frame.
      std::fwrite(record.data(), 1, record.size() / 2, file_);
      std::fflush(file_);
      ok_ = false;
      ++write_faults_;
      return;
    case testing::FaultAction::kFail:
      // ENOSPC: this record is lost but the writer keeps going — readers
      // see a seq gap, never a reorder.
      ++write_faults_;
      return;
    default:
      break;
  }
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    ++write_faults_;
    return;
  }
  if (segment_records_ == 0) segment_open_vt_ = event.virtual_time;
  ++segment_records_;
  segment_bytes_ += record.size();
  ++records_written_;
}

void JournalSegmentSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok_) std::fflush(file_);
}

// --- directory reader -----------------------------------------------------

JournalReadResult read_journal_dir(const std::string& directory,
                                   JournalReadOptions opts) {
  JournalReadResult result;
  std::vector<std::string> names;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (is_segment_name(name)) names.push_back(name);
  }
  if (ec) {
    result.error = "cannot list " + directory + ": " + ec.message();
    return result;
  }
  if (names.empty()) {
    result.error = "no journal segments in " + directory;
    return result;
  }
  // Zero-padded indices make the lexicographic order the write order.
  std::sort(names.begin(), names.end());

  result.segments = names.size();
  std::int64_t last_seq = -1;
  for (std::size_t i = 0; i < names.size(); ++i) {
    JournalReadOptions seg_opts = opts;
    // A sealed segment ends with a rotation fsync; only the final segment
    // can legitimately be torn by a writer crash.
    seg_opts.recover_truncated_tail =
        opts.recover_truncated_tail && i + 1 == names.size();
    JournalReadResult seg =
        read_journal(directory + "/" + names[i], seg_opts);
    if (!seg.ok) {
      result.error = names[i] + ": " + seg.error;
      return result;
    }
    result.schema_version = std::max(result.schema_version, seg.schema_version);
    result.truncated_tail = result.truncated_tail || seg.truncated_tail;
    result.compacted_dropped += seg.compacted_dropped;
    for (JournalEvent& ev : seg.events) {
      if (static_cast<std::int64_t>(ev.seq) <= last_seq) {
        result.error = names[i] + ": non-monotonic seq " +
                       std::to_string(ev.seq) + " across segment boundary";
        return result;
      }
      last_seq = static_cast<std::int64_t>(ev.seq);
      result.events.push_back(std::move(ev));
    }
  }
  result.ok = true;
  return result;
}

// --- writer / compaction --------------------------------------------------

bool write_journal_file(const std::string& path,
                        const std::vector<JournalEvent>& events,
                        std::uint64_t dropped_events, std::string* error) {
  const bool binary = path.ends_with(".vjseg");
  util::ensure_parent_dirs(path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  if (binary) out.write(kJournalBinaryMagic, sizeof(kJournalBinaryMagic));
  out << encode_record(header_payload(dropped_events), binary);
  for (const JournalEvent& ev : events)
    out << encode_record(ev.to_json_line(), binary);
  out.flush();
  if (!out) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

CompactionStats compact_journal_events(std::vector<JournalEvent>* events) {
  CompactionStats stats;
  // Final revision per region kind: everything below it was superseded
  // in-stream and replay (core::summarize_journal) discards it anyway.
  std::uint64_t final_revision[3] = {0, 0, 0};
  constexpr const char* kKindNames[3] = {"computation", "communication", "io"};
  for (const JournalEvent& ev : *events) {
    if (ev.type != "variance_region" && ev.type != "variance_clear") continue;
    const std::string kind = ev.str("kind");
    for (int k = 0; k < 3; ++k)
      if (kind == kKindNames[k])
        final_revision[k] = std::max(
            final_revision[k], static_cast<std::uint64_t>(ev.number("revision")));
  }
  // Quality scoreboard snapshots: each `quality` event closes a snapshot
  // (its cells precede it), and a later snapshot supersedes the whole
  // earlier one.  Keep only the cells after the last-but-one `quality`
  // plus the final `quality` itself.
  std::int64_t last_quality_seq = -1;
  std::int64_t prev_quality_seq = -1;
  for (const JournalEvent& ev : *events) {
    if (ev.type != "quality") continue;
    prev_quality_seq = last_quality_seq;
    last_quality_seq = static_cast<std::int64_t>(ev.seq);
  }

  auto superseded = [&](const JournalEvent& ev) {
    if (ev.type == "variance_region" || ev.type == "variance_clear") {
      const std::string kind = ev.str("kind");
      for (int k = 0; k < 3; ++k)
        if (kind == kKindNames[k])
          return static_cast<std::uint64_t>(ev.number("revision")) <
                 final_revision[k];
      return false;
    }
    if (ev.type == "quality")
      return static_cast<std::int64_t>(ev.seq) != last_quality_seq;
    if (ev.type == "quality_cell")
      return static_cast<std::int64_t>(ev.seq) < prev_quality_seq;
    return false;
  };

  std::vector<JournalEvent> kept;
  kept.reserve(events->size());
  for (JournalEvent& ev : *events) {
    if (superseded(ev))
      ++stats.dropped;
    else
      kept.push_back(std::move(ev));
  }
  stats.kept = kept.size();
  *events = std::move(kept);
  return stats;
}

bool compact_journal(const std::string& source, const std::string& dest,
                     CompactionStats* stats, std::string* error) {
  JournalReadOptions opts;
  opts.recover_truncated_tail = true;
  JournalReadResult read = read_journal(source, opts);
  if (!read.ok) {
    if (error) *error = read.error;
    return false;
  }
  const CompactionStats pass = compact_journal_events(&read.events);
  if (stats) *stats = pass;
  return write_journal_file(dest, read.events,
                            read.compacted_dropped + pass.dropped, error);
}

}  // namespace vapro::obs
