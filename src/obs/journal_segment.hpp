// Segmented journal store — the production-run shape of the event journal.
//
// A single ever-growing JSONL file is fine for a test run; a long-lived
// daemon needs bounded segments it can rotate, ship, and compact.  The
// JournalSegmentSink writes a directory of segments
//
//   journal-000000.vjseg, journal-000001.vjseg, ...
//
// rotating on size (`max_segment_bytes`) and/or event age
// (`max_segment_seconds`, measured in virtual time so tests are
// deterministic).  Each segment is self-describing: record 0 is the same
// schema header line a JSONL journal carries, so any segment can be read
// alone and a directory can be read as one stream.
//
// The default framing is binary: the file opens with the magic "VJS1" and
// every record is
//
//   u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
//
// where the payload is the event's JSON line text without the trailing
// newline — the same bytes the JSONL sink would write, so the two formats
// are interconvertible and `read_journal` auto-detects which one it was
// handed (a JSONL file starts with '{', never 'V').  The CRC is the same
// CRC-32/IEEE the wire codec uses (util::crc32); a torn final frame (a
// writer killed mid-write) is recoverable exactly like a torn JSONL line,
// while a CRC mismatch anywhere before the tail stays fatal — that is
// corruption, not a crash.
//
// JSONL segments (`binary = false`) remain available as a debug sink:
// human-greppable, byte-identical payloads, same rotation rules.
//
// Fault sites mirror JournalFileSink: "journal.write" honors short_write
// (torn frame/line, the sink goes quiet like a crashed writer) and fail
// (ENOSPC: the record is dropped and counted, seq numbers keep a gap);
// "journal.rotate" honors fail (the new segment cannot be created; the
// current segment stays active and rotation is retried on a later write).
//
// Offline compaction (`compact_journal`) drops events that replay can no
// longer observe — variance_region/variance_clear snapshots below the
// final revision of their kind, and quality/quality_cell scoreboard
// snapshots superseded by a later one — and records the count in the
// header's `dropped_events` field so `vapro_replay --from-journal` still
// renders the original `events:` line.  Everything kept retains its
// original seq and raw field text, which is what makes the compacted
// replay byte-identical to the uncompacted one.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/journal.hpp"

namespace vapro::obs {

// First four bytes of a binary segment.  'V' (0x56) can never begin a
// JSONL journal (those start with the header object's '{'), so one byte
// is enough to tell the formats apart.
inline constexpr char kJournalBinaryMagic[4] = {'V', 'J', 'S', '1'};

// Segment file name for index `i`: "journal-%06d.vjseg" (binary) or
// "journal-%06d.jsonl" (debug JSONL).
std::string journal_segment_name(std::size_t index, bool binary);

struct SegmentOptions {
  std::string directory;             // created if missing
  std::uint64_t max_segment_bytes = 0;  // 0 = never rotate on size
  double max_segment_seconds = 0.0;     // 0 = never rotate on event age
  bool binary = true;                   // false: JSONL debug segments
};

// Journal sink writing rotating segments into a directory.  Thread-safe
// like JournalFileSink; flush() flushes the active segment, rotation
// fsyncs the finished segment before switching so a rotation boundary
// never loses acknowledged events.
class JournalSegmentSink final : public JournalSink {
 public:
  explicit JournalSegmentSink(SegmentOptions options);
  ~JournalSegmentSink() override;

  bool ok() const { return ok_; }
  const SegmentOptions& options() const { return options_; }
  // Path of the segment currently being written.
  std::string active_path() const;
  // Paths of every segment opened so far, oldest first.
  std::vector<std::string> segment_paths() const;
  std::size_t segments_opened() const;

  std::uint64_t records_written() const { return records_written_; }
  // Records dropped or torn by injected/real write errors.
  std::uint64_t write_faults() const { return write_faults_; }
  // Rotations that could not open their new segment (site journal.rotate).
  std::uint64_t rotate_faults() const { return rotate_faults_; }

  void on_event(const JournalEvent& event) override;
  void flush() override;

 private:
  bool open_segment_locked();
  void sync_locked();
  bool should_rotate_locked(std::size_t record_bytes, double virtual_time) const;

  SegmentOptions options_;
  std::FILE* file_ = nullptr;
  bool ok_ = false;
  std::vector<std::string> paths_;       // opened segments, oldest first
  std::uint64_t segment_bytes_ = 0;      // bytes written to the active segment
  std::uint64_t segment_records_ = 0;    // event records in the active segment
  double segment_open_vt_ = 0.0;         // virtual time of its first event
  std::uint64_t records_written_ = 0;
  std::uint64_t write_faults_ = 0;
  std::uint64_t rotate_faults_ = 0;
  mutable std::mutex mu_;
};

// --- directory reader -----------------------------------------------------

// Reads every journal segment in `directory` (files named
// journal-*.vjseg / journal-*.jsonl, sorted by name; formats may be
// mixed) as one event stream.  Each segment must carry a valid header;
// sequence numbers must stay monotonic across segment boundaries.
// Torn-tail recovery (opts.recover_truncated_tail) applies only to the
// final segment — an earlier segment was sealed by a rotation and can
// only be short through corruption.  `compacted_dropped` sums the
// segments' `dropped_events` header fields.
JournalReadResult read_journal_dir(const std::string& directory,
                                   JournalReadOptions opts = {});

// --- writer / compaction --------------------------------------------------

// Writes `events` as a single journal file at `path`; binary framing when
// the path ends in ".vjseg", JSONL otherwise.  The header records
// `dropped_events` when non-zero.  Events keep their seq / raw field
// text, so write → read → write round-trips byte-identically.
bool write_journal_file(const std::string& path,
                        const std::vector<JournalEvent>& events,
                        std::uint64_t dropped_events, std::string* error);

struct CompactionStats {
  std::uint64_t kept = 0;
  std::uint64_t dropped = 0;
};

// In-place supersession pass: removes variance_region/variance_clear
// events below the final revision of their kind and quality/quality_cell
// snapshots older than the last scoreboard snapshot.  Every surviving
// event keeps its original seq (order is untouched), so replay of the
// kept stream reaches the same final state as replay of the full one.
CompactionStats compact_journal_events(std::vector<JournalEvent>* events);

// read (file or directory) → compact → write_journal_file.  The written
// header's dropped_events also carries forward drops recorded by earlier
// compactions of the source.  On success `stats` (if non-null) reports
// this pass's kept/dropped counts.
bool compact_journal(const std::string& source, const std::string& dest,
                     CompactionStats* stats, std::string* error);

}  // namespace vapro::obs
