#include "src/obs/alerts.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/testing/fault.hpp"
#include "src/util/fs.hpp"
#include "src/util/log.hpp"

namespace vapro::obs {

namespace {

// Known window-event metrics an alert rule may reference.
bool is_window_metric(const std::string& m) {
  return m == "variance_ratio" || m == "worst_cell" || m == "region_count" ||
         m == "coverage" || m == "shed_count";
}

// Scoreboard metrics, carried by "quality" events (src/obs/quality.hpp).
// Kept apart from window metrics so a quality rule never evaluates against
// a window event (where the missing field would read as 0.0 and a rule
// like `quality_recall < 0.8` would always hold).
bool is_quality_metric(const std::string& m) {
  return m == "quality_precision" || m == "quality_recall" ||
         m == "quality_f1" || m == "quality_top_factor_accuracy";
}

std::vector<std::string> tokenize(const std::string& spec) {
  // Split on whitespace, but also break the comparison operator out of a
  // compact spec like "variance_ratio>1.2".
  std::vector<std::string> tokens;
  std::string cur;
  auto push = [&] {
    if (!cur.empty()) tokens.push_back(cur);
    cur.clear();
  };
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c == ' ' || c == '\t') {
      push();
    } else if (c == '>' || c == '<') {
      push();
      std::string op(1, c);
      if (i + 1 < spec.size() && spec[i + 1] == '=') {
        op += '=';
        ++i;
      }
      tokens.push_back(op);
    } else {
      cur += c;
    }
  }
  push();
  return tokens;
}

}  // namespace

bool AlertRule::compare(double value) const {
  switch (op) {
    case Op::kGt: return value > threshold;
    case Op::kLt: return value < threshold;
    case Op::kGe: return value >= threshold;
    case Op::kLe: return value <= threshold;
  }
  return false;
}

bool parse_alert_rule(const std::string& spec, AlertRule* out,
                      std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error) *error = "bad alert rule '" + spec + "': " + what;
    return false;
  };
  std::vector<std::string> tokens = tokenize(spec);
  if (tokens.empty()) return fail("empty spec");

  AlertRule rule;
  rule.text = spec;
  std::size_t i = 0;

  // Metric: either a window metric or a factor reference
  // ("factor=io" / "factor:io", optionally followed by "contribution").
  const std::string& head = tokens[i++];
  if (head.rfind("factor=", 0) == 0 || head.rfind("factor:", 0) == 0) {
    rule.metric = "factor";
    rule.factor = head.substr(7);
    if (rule.factor.empty()) return fail("missing factor name");
    if (i < tokens.size() && tokens[i] == "contribution") ++i;
  } else if (is_window_metric(head) || is_quality_metric(head)) {
    rule.metric = head;
  } else {
    return fail("unknown metric '" + head +
                "' (want variance_ratio, worst_cell, region_count, "
                "coverage, shed_count, quality_precision, quality_recall, "
                "quality_f1, quality_top_factor_accuracy, or factor=NAME)");
  }

  if (i >= tokens.size()) return fail("missing comparison operator");
  const std::string& op = tokens[i++];
  if (op == ">") rule.op = AlertRule::Op::kGt;
  else if (op == "<") rule.op = AlertRule::Op::kLt;
  else if (op == ">=") rule.op = AlertRule::Op::kGe;
  else if (op == "<=") rule.op = AlertRule::Op::kLe;
  else return fail("unknown operator '" + op + "'");

  if (i >= tokens.size()) return fail("missing threshold");
  char* end = nullptr;
  rule.threshold = std::strtod(tokens[i].c_str(), &end);
  if (!end || *end != '\0') return fail("bad threshold '" + tokens[i] + "'");
  ++i;

  if (i < tokens.size()) {
    if (tokens[i] != "for") return fail("expected 'for', got '" + tokens[i] + "'");
    if (++i >= tokens.size()) return fail("missing window count after 'for'");
    rule.for_windows = std::atoi(tokens[i].c_str());
    if (rule.for_windows < 1) return fail("window count must be >= 1");
    ++i;
    if (i < tokens.size() && (tokens[i] == "windows" || tokens[i] == "window"))
      ++i;
  }
  if (i != tokens.size()) return fail("trailing tokens after rule");
  *out = rule;
  return true;
}

// --- sinks ----------------------------------------------------------------

void StderrAlertSink::on_alert(const Alert& alert) {
  std::ostringstream oss;
  oss << "ALERT [" << alert.rule_text << "]: " << alert.metric << " = "
      << alert.value << " (threshold " << alert.threshold << ") at window "
      << alert.window << ", t=" << alert.virtual_time;
  util::log_line(util::LogLevel::kWarn, "alerts", oss.str());
}

void JournalAlertSink::on_alert(const Alert& alert) {
  if (!journal_) return;
  journal_->emit("alert", alert.window, alert.virtual_time,
                 {JournalField::str("rule", alert.rule_text),
                  JournalField::str("metric", alert.metric),
                  JournalField::num("value", alert.value),
                  JournalField::num("threshold", alert.threshold)});
}

WebhookFileSink::WebhookFileSink(const std::string& path) {
  util::ensure_parent_dirs(path);
  out_.open(path, std::ios::binary | std::ios::app);
  ok_ = static_cast<bool>(out_);
}

void WebhookFileSink::on_alert(const Alert& alert) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return;
  char value[40], threshold[40];
  std::snprintf(value, sizeof(value), "%.17g", alert.value);
  std::snprintf(threshold, sizeof(threshold), "%.17g", alert.threshold);
  out_ << "{\"event\":\"vapro.alert\",\"rule\":\""
       << journal_json_escape(alert.rule_text) << "\",\"metric\":\""
       << journal_json_escape(alert.metric) << "\",\"value\":" << value
       << ",\"threshold\":" << threshold << ",\"window\":" << alert.window
       << "}\n";
  out_.flush();
}

// --- engine ---------------------------------------------------------------

void AlertEngine::add_rule(AlertRule rule) {
  RuleState st;
  st.rule = std::move(rule);
  states_.push_back(std::move(st));
}

void AlertEngine::add_alert_sink(AlertSink* sink) { sinks_.push_back(sink); }

void AlertEngine::on_event(const JournalEvent& event) {
  if (event.type == "diagnosis_finding") {
    const std::string factor = event.str("factor");
    const double share = event.number("share");
    for (RuleState& st : states_) {
      if (st.rule.metric != "factor" || st.rule.factor != factor) continue;
      if (st.rule.compare(share)) {
        st.factor_hit = true;
        st.factor_value = share;
      }
    }
    return;
  }
  if (event.type == "quality") {
    // Quality rules tick once per scoreboard publication, so `for N`
    // means N consecutive publications below/above threshold.
    for (RuleState& st : states_)
      if (is_quality_metric(st.rule.metric)) evaluate_window(st, event);
    return;
  }
  // Ingest-plane drops accumulate between window events; each window event
  // evaluates (and then resets) the count, so `shed_count > 0 for 2` means
  // two consecutive windows that both lost batches to overload.
  if (event.type == "shed" || event.type == "net_drop") {
    ++shed_in_window_;
    return;
  }
  if (event.type != "window") return;
  for (RuleState& st : states_)
    if (!is_quality_metric(st.rule.metric)) evaluate_window(st, event);
  shed_in_window_ = 0;
}

void AlertEngine::evaluate_window(RuleState& st,
                                  const JournalEvent& window_event) {
  bool holds;
  double value;
  if (st.rule.metric == "factor") {
    // Diagnosis findings for this window arrived before the window event.
    holds = st.factor_hit;
    value = st.factor_value;
    st.factor_hit = false;
    st.factor_value = 0.0;
  } else if (st.rule.metric == "shed_count") {
    value = static_cast<double>(shed_in_window_);
    holds = st.rule.compare(value);
  } else {
    value = window_event.number(st.rule.metric);
    holds = st.rule.compare(value);
  }
  if (!holds) {
    st.streak = 0;
    st.active = false;  // condition broke: re-arm
    return;
  }
  if (++st.streak >= st.rule.for_windows && !st.active) {
    st.active = true;
    fire(st, value, window_event);
  }
}

void AlertEngine::fire(RuleState& st, double value,
                       const JournalEvent& event) {
  ++fired_;
  Alert alert;
  alert.rule_text = st.rule.text;
  alert.metric = st.rule.metric == "factor"
                     ? "factor." + st.rule.factor + ".share"
                     : st.rule.metric;
  alert.value = value;
  alert.threshold = st.rule.threshold;
  alert.window = event.window;
  alert.virtual_time = event.virtual_time;
  for (AlertSink* sink : sinks_) {
    if (VAPRO_FAULT("alerts.dispatch") == testing::FaultAction::kDrop) {
      ++dispatch_faults_;
      continue;  // this sink misses the alert; the rule state already fired
    }
    // A sink that throws must not take down the analysis thread or starve
    // the remaining sinks of the alert.
    try {
      sink->on_alert(alert);
    } catch (...) {
      ++dispatch_faults_;
    }
  }
}

}  // namespace vapro::obs
