#include "src/obs/span.hpp"

#include "src/testing/fault.hpp"

namespace vapro::obs {

SpanScope::SpanScope(Options opts, std::string name, std::string category,
                     std::vector<TraceArg> args)
    : opts_(opts),
      name_(std::move(name)),
      category_(std::move(category)),
      args_(std::move(args)) {
  if (opts_.trace) {
    t0_ns_ = opts_.trace->now_ns();
    if (opts_.flow_in != 0)
      opts_.trace->flow_end(name_, category_, opts_.flow_in, t0_ns_);
  }
  if (opts_.hist) t0_ = std::chrono::steady_clock::now();
}

std::uint64_t SpanScope::flow_out(const std::string& name) {
  if (!opts_.trace) return 0;
  const std::uint64_t id = opts_.trace->next_flow_id();
  opts_.trace->flow_start(name, category_, id, opts_.trace->now_ns());
  return id;
}

double SpanScope::finish() {
  if (finished_) return 0.0;
  finished_ = true;
  double seconds = 0.0;
  if (opts_.hist) {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    seconds = static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                      .count()) *
              1e-9;
    // The measurement always lands: a span whose *emission* faults below
    // must still be visible in the latency distribution.
    opts_.hist->record(seconds);
  }
  if (!opts_.trace) return seconds;
  std::uint64_t end_ns = opts_.trace->now_ns();
  std::uint64_t dur_ns = end_ns > t0_ns_ ? end_ns - t0_ns_ : 0;
  switch (VAPRO_FAULT("obs.span")) {
    case testing::FaultAction::kFail:
    case testing::FaultAction::kDrop:
      // Emission lost (e.g. the writer behind the recorder is gone).  The
      // trace simply misses one slice; count it so /metrics shows the gap.
      if (opts_.dropped) opts_.dropped->inc();
      return seconds;
    case testing::FaultAction::kShortWrite: {
      // Torn span: only part of the duration was captured.  Mark it so a
      // timeline reader can discount the slice; the event itself is still
      // well-formed.
      dur_ns /= 2;
      std::vector<TraceArg> args = std::move(args_);
      args.push_back(TraceRecorder::arg("torn", std::uint64_t{1}));
      opts_.trace->complete_span(name_, category_, t0_ns_, dur_ns,
                                 std::move(args));
      if (opts_.dropped) opts_.dropped->inc();
      return seconds;
    }
    default:
      break;
  }
  opts_.trace->complete_span(name_, category_, t0_ns_, dur_ns,
                             std::move(args_));
  return seconds;
}

}  // namespace vapro::obs
