// Self-telemetry metrics registry (the tool watching itself).
//
// Vapro's pitch is production-run operation at <1.38% overhead (Table 1);
// this registry is how the reproduction observes its *own* pipeline rather
// than burying costs in ad-hoc logs.  Three instrument kinds:
//
//   * Counter   — monotonic u64, relaxed-atomic increments;
//   * Gauge     — last-written double (CAS loop for add());
//   * Histogram — fixed log2-spaced latency buckets (100 ns .. ~55 s) with
//                 p50/p95/p99 extraction by linear interpolation inside the
//                 owning bucket.
//
// Registration takes a mutex once per (name) and hands back a stable
// pointer; the hot path afterwards is a single relaxed atomic op, so
// instruments can sit inside per-window (and even per-intercept) code.
// ScopedTimer measures a wall-clock span and records it into a Histogram.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vapro::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram;

// Value-type copy of a Histogram at one instant.  Snapshots from histograms
// with the same (fixed) bucket layout merge by plain addition, which is what
// makes per-shard histograms foldable into one fleet view without ever
// locking the hot path.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 30;  // mirrors Histogram::kBuckets
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum_seconds = 0.0;

  void merge(const HistogramSnapshot& other);
  double mean_seconds() const {
    return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
  }
  // q in (0,1); returns 0 when empty (same semantics as Histogram).
  double quantile(double q) const;
};

class Histogram {
 public:
  // Buckets double from kMinSeconds; values outside clamp to the ends.
  static constexpr double kMinSeconds = 100e-9;
  static constexpr std::size_t kBuckets = 30;  // 100 ns · 2^29 ≈ 53.7 s

  void record(double seconds);

  // Coherent-enough copy for rendering/merging.  Individual loads are
  // relaxed-atomic; a snapshot taken concurrently with record() may be one
  // observation ahead/behind in count vs buckets, never torn per-field.
  HistogramSnapshot snapshot() const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const { return sum_.load(std::memory_order_relaxed); }
  double mean_seconds() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum_seconds() / static_cast<double>(n);
  }
  // q in (0,1); returns 0 when empty.  Exact to within the owning bucket
  // (≤ 2× relative error by construction of the log2 bounds).
  double quantile(double q) const;
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Lower bound of bucket i in seconds (bucket 0 starts at 0).
  static double bucket_lo(std::size_t i);
  static double bucket_hi(std::size_t i);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Owns every instrument; hands out stable pointers.  Same name + same kind
// returns the same instrument (cross-module sharing by name).
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Lookup without registering: nullptr when no such gauge exists yet.
  // Readers (health endpoints) use this so probing for an optional gauge
  // does not create a zero-valued instrument in /metrics.
  const Gauge* find_gauge(const std::string& name) const;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  // {"count":..,"sum_seconds":..,"mean_seconds":..,"p50":..,"p95":..,
  //  "p99":..}}}.
  std::string to_json() const;

  // Human-readable dump for the end-of-run table, sorted by name.
  struct Row {
    std::string name;
    std::string kind;   // "counter" | "gauge" | "histogram"
    std::string value;  // formatted
  };
  std::vector<Row> rows() const;

  // Raw snapshots for machine renderers (Prometheus exposition).  The
  // Histogram pointers stay valid for the registry's lifetime; instrument
  // reads are atomic, so renderers need no further locking.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, double>> gauge_values() const;
  std::vector<std::pair<std::string, const Histogram*>> histogram_entries()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Records the lifetime of a scope into a histogram (and optionally adds the
// same span to an atomic nanosecond accumulator — the overhead accountant's
// hook).  Null targets make it a no-op so call sites need no branching.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h, std::atomic<std::uint64_t>* also_ns = nullptr)
      : h_(h), also_ns_(also_ns) {
    if (h_ || also_ns_) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Ends the measurement early; the destructor then does nothing.
  double stop();

 private:
  Histogram* h_;
  std::atomic<std::uint64_t>* also_ns_;
  std::chrono::steady_clock::time_point t0_{};
  bool stopped_ = false;
};

}  // namespace vapro::obs
