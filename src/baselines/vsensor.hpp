// vSensor-like baseline (Tang et al., PPoPP'18 — the paper's state of the
// art comparator).
//
// vSensor identifies fixed-workload snippets by *static* source analysis at
// compile time and instruments exactly those, so at runtime it can use a
// snippet only when the compiler could prove its workload fixed.  Our
// simulated stand-in consumes the same interception stream as Vapro but:
//   * keeps only computation fragments whose entire span was marked
//     statically fixed (ComputeWorkload::statically_fixed);
//   * treats every instrumented snippet (STG edge) as one fixed-workload
//     class — no runtime clustering, so de-facto-fixed snippets with
//     several runtime workload classes are lost, exactly the limitation
//     §3.1 describes;
//   * cannot diagnose (it records no breakdown counters).
//
// It reports normalized performance per snippet relative to the fastest
// observed execution and a coverage figure comparable to Table 1.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/core/heatmap.hpp"
#include "src/sim/intercept.hpp"

namespace vapro::baselines {

struct VsensorOptions {
  double bin_seconds = 0.25;
  double variance_threshold = 0.85;
  int min_snippet_executions = 5;
};

class VsensorTool final : public sim::Interceptor {
 public:
  VsensorTool(int ranks, VsensorOptions opts);

  // sim::Interceptor (context-free: vSensor instruments call sites).
  void on_call_begin(const sim::InvocationInfo& info, double time,
                     const pmu::CounterSample& ground_truth) override;
  void on_call_end(const sim::InvocationInfo& info, double time,
                   const pmu::CounterSample& ground_truth) override;

  // Must be called once the run ends: normalizes the recorded snippet
  // executions and builds the heat map.
  void finalize();

  const core::Heatmap& computation_map() const { return map_; }
  std::vector<core::VarianceRegion> locate() const;

  // Time covered by statically-fixed snippet executions.
  double covered_seconds() const { return covered_seconds_; }
  double coverage(double total_execution_seconds) const;

 private:
  struct Execution {
    int rank;
    double start, end;
  };
  struct Snippet {
    std::vector<Execution> executions;
    double fastest = 0.0;
  };
  struct RankState {
    bool has_last = false;
    std::uint64_t last_site = 0;
    double last_end_time = 0.0;
  };

  VsensorOptions opts_;
  std::vector<RankState> ranks_;
  std::unordered_map<std::uint64_t, Snippet> snippets_;  // keyed by edge
  core::Heatmap map_;
  double covered_seconds_ = 0.0;
  bool finalized_ = false;
};

}  // namespace vapro::baselines
