#include "src/baselines/mpip.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/check.hpp"
#include "src/util/table.hpp"

namespace vapro::baselines {

MpipProfiler::MpipProfiler(int ranks)
    : ranks_(static_cast<std::size_t>(ranks)) {}

void MpipProfiler::on_call_begin(const sim::InvocationInfo& info, double time,
                                 const pmu::CounterSample& /*gt*/) {
  ranks_[static_cast<std::size_t>(info.rank)].call_begin = time;
}

void MpipProfiler::on_call_end(const sim::InvocationInfo& info, double time,
                               const pmu::CounterSample& /*gt*/) {
  RankStats& rs = ranks_[static_cast<std::size_t>(info.rank)];
  const double dur = time - rs.call_begin;
  if (sim::is_io_op(info.kind)) {
    rs.io_seconds += dur;
  } else if (sim::is_comm_op(info.kind)) {
    rs.comm_seconds += dur;
  }
}

void MpipProfiler::on_program_end(sim::RankId rank, double time) {
  ranks_[static_cast<std::size_t>(rank)].finish_time = time;
}

double MpipProfiler::communication_seconds(int rank) const {
  return ranks_[static_cast<std::size_t>(rank)].comm_seconds;
}

double MpipProfiler::io_seconds(int rank) const {
  return ranks_[static_cast<std::size_t>(rank)].io_seconds;
}

double MpipProfiler::total_seconds(int rank) const {
  return ranks_[static_cast<std::size_t>(rank)].finish_time;
}

double MpipProfiler::computation_seconds(int rank) const {
  const RankStats& rs = ranks_[static_cast<std::size_t>(rank)];
  return std::max(0.0, rs.finish_time - rs.comm_seconds - rs.io_seconds);
}

std::string MpipProfiler::summary(int max_rows) const {
  util::TextTable table({"rank", "total(s)", "comp(s)", "comm(s)", "io(s)",
                         "comm%"});
  const int step =
      std::max<int>(1, static_cast<int>(ranks_.size()) / max_rows);
  for (std::size_t r = 0; r < ranks_.size(); r += static_cast<std::size_t>(step)) {
    const double total = total_seconds(static_cast<int>(r));
    table.add_row({std::to_string(r), util::fmt(total, 3),
                   util::fmt(computation_seconds(static_cast<int>(r)), 3),
                   util::fmt(communication_seconds(static_cast<int>(r)), 3),
                   util::fmt(io_seconds(static_cast<int>(r)), 3),
                   util::fmt(total > 0
                                 ? 100.0 *
                                       communication_seconds(static_cast<int>(r)) /
                                       total
                                 : 0.0,
                             1)});
  }
  std::ostringstream oss;
  oss << "mpiP-style profile (one row per " << step << " ranks):\n";
  table.print(oss);
  return oss.str();
}

}  // namespace vapro::baselines
