// mpiP-like baseline profiler (Vetter & Chambreau) — used for the Fig 14
// comparison: a classic profile sums communication time per rank and leaves
// "computation" as everything else, which misattributes dependency-induced
// waiting to the network and hides small computation slowdowns.
#pragma once

#include <string>
#include <vector>

#include "src/sim/intercept.hpp"

namespace vapro::baselines {

class MpipProfiler final : public sim::Interceptor {
 public:
  explicit MpipProfiler(int ranks);

  void on_call_begin(const sim::InvocationInfo& info, double time,
                     const pmu::CounterSample& ground_truth) override;
  void on_call_end(const sim::InvocationInfo& info, double time,
                   const pmu::CounterSample& ground_truth) override;
  void on_program_end(sim::RankId rank, double time) override;

  // Per-rank summary, valid after the run.
  double communication_seconds(int rank) const;
  double io_seconds(int rank) const;
  double total_seconds(int rank) const;
  // "Computation" the way a profile reports it: wall minus profiled calls.
  double computation_seconds(int rank) const;

  // Aggregate report resembling mpiP's output header.
  std::string summary(int max_rows = 16) const;

 private:
  struct RankStats {
    double call_begin = 0.0;
    double comm_seconds = 0.0;
    double io_seconds = 0.0;
    double finish_time = 0.0;
  };
  std::vector<RankStats> ranks_;
};

}  // namespace vapro::baselines
