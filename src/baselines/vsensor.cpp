#include "src/baselines/vsensor.hpp"

#include <algorithm>
#include <limits>

#include "src/util/check.hpp"

namespace vapro::baselines {

VsensorTool::VsensorTool(int ranks, VsensorOptions opts)
    : opts_(opts),
      ranks_(static_cast<std::size_t>(ranks)),
      map_(ranks, opts.bin_seconds) {}

void VsensorTool::on_call_begin(const sim::InvocationInfo& info, double time,
                                const pmu::CounterSample& /*gt*/) {
  // Probes are inserted by Vapro's binary rewriting (§5); vSensor has no
  // equivalent and never sees them as snippet delimiters.
  if (info.kind == sim::OpKind::kProbe) return;
  RankState& rs = ranks_[static_cast<std::size_t>(info.rank)];
  if (rs.has_last && info.statically_fixed_since_last) {
    // One execution of a statically identified fixed-workload snippet.
    const std::uint64_t key =
        (rs.last_site << 32) ^ static_cast<std::uint64_t>(info.site);
    snippets_[key].executions.push_back(
        Execution{info.rank, rs.last_end_time, time});
  }
  rs.last_site = info.site;
}

void VsensorTool::on_call_end(const sim::InvocationInfo& info, double time,
                              const pmu::CounterSample& /*gt*/) {
  if (info.kind == sim::OpKind::kProbe) return;
  RankState& rs = ranks_[static_cast<std::size_t>(info.rank)];
  rs.has_last = true;
  rs.last_site = info.site;
  rs.last_end_time = time;
}

void VsensorTool::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (auto& [key, snippet] : snippets_) {
    if (snippet.executions.size() <
        static_cast<std::size_t>(opts_.min_snippet_executions))
      continue;
    double fastest = std::numeric_limits<double>::infinity();
    for (const Execution& e : snippet.executions)
      fastest = std::min(fastest, e.end - e.start);
    snippet.fastest = fastest;
    if (fastest <= 0.0) continue;
    for (const Execution& e : snippet.executions) {
      const double dur = e.end - e.start;
      covered_seconds_ += dur;
      const double perf = dur > 0.0 ? std::min(1.0, fastest / dur) : 1.0;
      map_.deposit(e.rank, e.start, e.end, perf);
    }
  }
}

std::vector<core::VarianceRegion> VsensorTool::locate() const {
  VAPRO_CHECK_MSG(finalized_, "call finalize() before locate()");
  return core::find_variance_regions(map_, opts_.variance_threshold);
}

double VsensorTool::coverage(double total_execution_seconds) const {
  VAPRO_CHECK_MSG(finalized_, "call finalize() before coverage()");
  if (total_execution_seconds <= 0.0) return 0.0;
  return std::min(1.0, covered_seconds_ / total_execution_seconds);
}

}  // namespace vapro::baselines
