// The (process × time) normalized-performance heat map of §3.5 and the
// region-growing variance locator.
//
// Each normalized fragment deposits its performance into the time bins it
// overlaps, weighted by overlap duration.  Cells without data are "quiet"
// (no fixed-workload fragment executed there) and never count as variance.
#pragma once

#include <cmath>
#include <string>
#include <vector>

namespace vapro::util {
class WorkerPool;
}

namespace vapro::core {

class Heatmap {
 public:
  // `bin_seconds` — time resolution; rows are ranks.
  Heatmap(int ranks, double bin_seconds);

  void deposit(int rank, double start, double end, double perf);

  // Accumulates another map's cells (same ranks and bin size) — used by
  // the multi-server aggregation root.
  void merge(const Heatmap& other);

  int ranks() const { return ranks_; }
  int bins() const { return bins_; }
  double bin_seconds() const { return bin_seconds_; }

  bool has_data(int rank, int bin) const;
  // Mean normalized performance in a cell; NaN when no data.
  double cell(int rank, int bin) const;
  // Total fragment-seconds deposited in a cell.
  double weight(int rank, int bin) const;

  // Mean performance over a whole row/column (ignoring empty cells).
  double row_mean(int rank) const;
  // Weighted mean over the entire map; NaN when empty.
  double overall_mean() const;

  // ASCII rendering: rows capped at `max_rows` by subsampling, bins at
  // `max_cols` by aggregation.  '#'..' ' ramp, low performance = dark.
  std::string render_ascii(int max_rows = 32, int max_cols = 100) const;

  // CSV dump: header row of bin times, one row per rank.
  void write_csv(const std::string& path) const;

 private:
  void ensure_bins(int bin);
  int ranks_;
  double bin_seconds_;
  int bins_ = 0;
  // Row-major [rank][bin]; parallel arrays of Σ perf·w and Σ w.
  std::vector<double> weighted_;
  std::vector<double> weights_;
};

// A contiguous low-performance region found by region growing (§3.5:
// threshold 0.85, 4-connectivity on cells below threshold).
struct VarianceRegion {
  int rank_lo = 0, rank_hi = 0;  // inclusive bounding box
  int bin_lo = 0, bin_hi = 0;
  std::size_t cells = 0;
  double mean_perf = 1.0;
  // Quantified performance loss: Σ over cells of (1 - perf) · fragment
  // seconds in the cell — the paper's "impact on performance".
  double impact_seconds = 0.0;

  double time_lo(double bin_seconds) const { return bin_lo * bin_seconds; }
  double time_hi(double bin_seconds) const { return (bin_hi + 1) * bin_seconds; }
};

// Finds all variance regions below `threshold`, sorted by impact
// (descending, ties broken by row-major discovery order) as the paper
// reports them.  With a multi-lane `pool`, the map is split into
// contiguous rank stripes labeled in parallel and stitched by a
// deterministic boundary merge; the result is byte-identical for every
// lane count (stats always accumulate in one row-major sweep, and
// components are renumbered by first row-major cell).
std::vector<VarianceRegion> find_variance_regions(
    const Heatmap& map, double threshold = 0.85,
    util::WorkerPool* pool = nullptr);

}  // namespace vapro::core
