#include "src/core/heatmap.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <sstream>

#include "src/util/check.hpp"
#include "src/util/csv.hpp"
#include "src/util/pipeline.hpp"
#include "src/util/table.hpp"

namespace vapro::core {

Heatmap::Heatmap(int ranks, double bin_seconds)
    : ranks_(ranks), bin_seconds_(bin_seconds) {
  VAPRO_CHECK(ranks > 0 && bin_seconds > 0.0);
}

void Heatmap::ensure_bins(int bin) {
  if (bin < bins_) return;
  const int new_bins = bin + 1;
  std::vector<double> weighted(static_cast<std::size_t>(ranks_) * new_bins, 0.0);
  std::vector<double> weights(static_cast<std::size_t>(ranks_) * new_bins, 0.0);
  for (int r = 0; r < ranks_; ++r) {
    for (int b = 0; b < bins_; ++b) {
      weighted[static_cast<std::size_t>(r) * new_bins + b] =
          weighted_[static_cast<std::size_t>(r) * bins_ + b];
      weights[static_cast<std::size_t>(r) * new_bins + b] =
          weights_[static_cast<std::size_t>(r) * bins_ + b];
    }
  }
  weighted_ = std::move(weighted);
  weights_ = std::move(weights);
  bins_ = new_bins;
}

void Heatmap::deposit(int rank, double start, double end, double perf) {
  VAPRO_CHECK(rank >= 0 && rank < ranks_);
  if (end <= start) return;
  const int first = static_cast<int>(start / bin_seconds_);
  const int last = static_cast<int>(end / bin_seconds_);
  ensure_bins(last);
  for (int b = first; b <= last; ++b) {
    const double lo = std::max(start, b * bin_seconds_);
    const double hi = std::min(end, (b + 1) * bin_seconds_);
    const double w = hi - lo;
    if (w <= 0.0) continue;
    weighted_[static_cast<std::size_t>(rank) * bins_ + b] += perf * w;
    weights_[static_cast<std::size_t>(rank) * bins_ + b] += w;
  }
}

void Heatmap::merge(const Heatmap& other) {
  VAPRO_CHECK(other.ranks_ == ranks_);
  VAPRO_CHECK(other.bin_seconds_ == bin_seconds_);
  if (other.bins_ == 0) return;
  ensure_bins(other.bins_ - 1);
  for (int r = 0; r < ranks_; ++r) {
    for (int b = 0; b < other.bins_; ++b) {
      weighted_[static_cast<std::size_t>(r) * bins_ + b] +=
          other.weighted_[static_cast<std::size_t>(r) * other.bins_ + b];
      weights_[static_cast<std::size_t>(r) * bins_ + b] +=
          other.weights_[static_cast<std::size_t>(r) * other.bins_ + b];
    }
  }
}

bool Heatmap::has_data(int rank, int bin) const {
  if (bin >= bins_) return false;
  return weights_[static_cast<std::size_t>(rank) * bins_ + bin] > 0.0;
}

double Heatmap::cell(int rank, int bin) const {
  if (!has_data(rank, bin)) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t i = static_cast<std::size_t>(rank) * bins_ + bin;
  return weighted_[i] / weights_[i];
}

double Heatmap::weight(int rank, int bin) const {
  if (bin >= bins_) return 0.0;
  return weights_[static_cast<std::size_t>(rank) * bins_ + bin];
}

double Heatmap::row_mean(int rank) const {
  double num = 0.0, den = 0.0;
  for (int b = 0; b < bins_; ++b) {
    const std::size_t i = static_cast<std::size_t>(rank) * bins_ + b;
    num += weighted_[i];
    den += weights_[i];
  }
  return den > 0.0 ? num / den : std::numeric_limits<double>::quiet_NaN();
}

double Heatmap::overall_mean() const {
  double num = 0.0, den = 0.0;
  for (double w : weights_) den += w;
  for (std::size_t i = 0; i < weighted_.size(); ++i) num += weighted_[i];
  return den > 0.0 ? num / den : std::numeric_limits<double>::quiet_NaN();
}

std::string Heatmap::render_ascii(int max_rows, int max_cols) const {
  // Dark = slow.  Index 0 is the slowest bucket.
  static constexpr char kRamp[] = {'#', '@', '%', '+', '-', '.', ' '};
  constexpr int kLevels = static_cast<int>(sizeof(kRamp));

  const int row_step = std::max(1, (ranks_ + max_rows - 1) / max_rows);
  const int col_step = std::max(1, (bins_ + max_cols - 1) / max_cols);
  std::ostringstream oss;
  oss << "normalized performance heat map (" << ranks_ << " ranks x " << bins_
      << " bins of " << bin_seconds_ << "s; '#'=slow, ' '=fast, '?'=no data)\n";
  for (int r0 = 0; r0 < ranks_; r0 += row_step) {
    oss << "rank ";
    oss.width(5);
    oss << r0 << " |";
    for (int b0 = 0; b0 < bins_; b0 += col_step) {
      double num = 0.0, den = 0.0;
      for (int r = r0; r < std::min(ranks_, r0 + row_step); ++r) {
        for (int b = b0; b < std::min(bins_, b0 + col_step); ++b) {
          const std::size_t i = static_cast<std::size_t>(r) * bins_ + b;
          num += weighted_[i];
          den += weights_[i];
        }
      }
      if (den <= 0.0) {
        oss << '?';
      } else {
        double perf = std::clamp(num / den, 0.0, 1.0);
        oss << kRamp[std::min(kLevels - 1, static_cast<int>(perf * kLevels))];
      }
    }
    oss << "|\n";
  }
  return oss.str();
}

void Heatmap::write_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  std::vector<std::string> header;
  header.push_back("rank\\time_s");
  for (int b = 0; b < bins_; ++b)
    header.push_back(util::fmt(b * bin_seconds_, 3));
  csv.write_row(header);
  for (int r = 0; r < ranks_; ++r) {
    std::vector<std::string> row;
    row.push_back(std::to_string(r));
    for (int b = 0; b < bins_; ++b) {
      double v = cell(r, b);
      row.push_back(std::isnan(v) ? "" : util::fmt(v, 4));
    }
    csv.write_row(row);
  }
}

namespace {

// First row of stripe `s` when `ranks` rows split into `stripes` stripes
// (balanced: sizes differ by at most one, empty only when stripes > ranks).
int stripe_begin(int ranks, int stripes, int s) {
  return static_cast<int>((static_cast<long long>(ranks) * s) / stripes);
}

// Per-stripe connected-component labeling: BFS with 4-connectivity over
// low cells, CONFINED to the stripe's rows [row_lo, row_hi).  Writes only
// this stripe's rows of `label` (labels are stripe-local, starting at 0)
// and returns the number of local components — so concurrent stripes never
// touch the same memory.
std::size_t label_stripe(const std::vector<std::uint8_t>& low, int bins,
                         int row_lo, int row_hi,
                         std::vector<std::int64_t>& label) {
  auto idx = [bins](int r, int b) {
    return static_cast<std::size_t>(r) * bins + b;
  };
  std::size_t next_label = 0;
  std::deque<std::pair<int, int>> frontier;
  for (int r = row_lo; r < row_hi; ++r) {
    for (int b = 0; b < bins; ++b) {
      if (!low[idx(r, b)] || label[idx(r, b)] >= 0) continue;
      const std::int64_t id = static_cast<std::int64_t>(next_label++);
      label[idx(r, b)] = id;
      frontier.assign(1, {r, b});
      while (!frontier.empty()) {
        auto [cr, cb] = frontier.front();
        frontier.pop_front();
        constexpr int dr[] = {1, -1, 0, 0};
        constexpr int db[] = {0, 0, 1, -1};
        for (int k = 0; k < 4; ++k) {
          const int nr = cr + dr[k], nb = cb + db[k];
          if (nr < row_lo || nr >= row_hi || nb < 0 || nb >= bins) continue;
          if (!low[idx(nr, nb)] || label[idx(nr, nb)] >= 0) continue;
          label[idx(nr, nb)] = id;
          frontier.emplace_back(nr, nb);
        }
      }
    }
  }
  return next_label;
}

// Path-halving find on the boundary-merge union-find.
std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

std::vector<VarianceRegion> find_variance_regions(const Heatmap& map,
                                                  double threshold,
                                                  util::WorkerPool* pool) {
  const int ranks = map.ranks();
  const int bins = map.bins();
  const std::size_t cells = static_cast<std::size_t>(ranks) * bins;
  std::vector<VarianceRegion> regions;
  if (cells == 0) return regions;
  auto idx = [bins](int r, int b) {
    return static_cast<std::size_t>(r) * bins + b;
  };

  // The sharded pass splits rows into contiguous rank stripes, one task
  // per stripe; one stripe IS the serial path (same code, no special
  // case).  Determinism argument: stripe labeling writes only stripe-local
  // state, the boundary merge and everything after run serially in fixed
  // row-major order, and components are renumbered by first row-major
  // cell — so the output is a pure function of the map, independent of
  // the stripe count and of scheduling.
  const int stripes =
      pool && pool->lanes() > 1
          ? static_cast<int>(
                std::min<std::size_t>(pool->lanes(),
                                      static_cast<std::size_t>(ranks)))
          : 1;

  // Pass 1 (sharded): low-cell mask + stripe-confined component labeling.
  std::vector<std::uint8_t> low(cells, 0);
  std::vector<std::int64_t> label(cells, -1);
  std::vector<std::size_t> stripe_labels(static_cast<std::size_t>(stripes), 0);
  auto run_stripe = [&](std::size_t s) {
    const int row_lo = stripe_begin(ranks, stripes, static_cast<int>(s));
    const int row_hi = stripe_begin(ranks, stripes, static_cast<int>(s) + 1);
    for (int r = row_lo; r < row_hi; ++r) {
      for (int b = 0; b < bins; ++b) {
        const double v = map.cell(r, b);
        low[idx(r, b)] = !std::isnan(v) && v < threshold ? 1 : 0;
      }
    }
    stripe_labels[s] = label_stripe(low, bins, row_lo, row_hi, label);
  };
  if (stripes == 1) {
    run_stripe(0);
  } else {
    const std::size_t failed = pool->run(
        static_cast<std::size_t>(stripes),
        [&](std::size_t s, std::size_t) { run_stripe(s); });
    if (failed > 0) {
      // Contained task failure: redo the whole pass serially (nothing
      // outside the scratch vectors was touched, so this is equivalent).
      std::fill(low.begin(), low.end(), 0);
      std::fill(label.begin(), label.end(), -1);
      for (int s = 0; s < stripes; ++s)
        run_stripe(static_cast<std::size_t>(s));
    }
  }

  // Pass 2 (serial): globalize stripe-local labels by prefix offsets.
  std::vector<std::size_t> offset(static_cast<std::size_t>(stripes) + 1, 0);
  for (int s = 0; s < stripes; ++s)
    offset[s + 1] = offset[s] + stripe_labels[s];
  const std::size_t total_labels = offset[stripes];
  if (total_labels == 0) return regions;
  for (int s = 1; s < stripes; ++s) {
    const int row_lo = stripe_begin(ranks, stripes, s);
    const int row_hi = stripe_begin(ranks, stripes, s + 1);
    if (offset[s] == 0) continue;
    for (int r = row_lo; r < row_hi; ++r)
      for (int b = 0; b < bins; ++b)
        if (label[idx(r, b)] >= 0)
          label[idx(r, b)] += static_cast<std::int64_t>(offset[s]);
  }

  // Pass 3 (serial): stitch components across stripe boundaries — a low
  // cell vertically adjacent to a low cell in the stripe above joins its
  // component.  Visited in ascending (stripe, bin) order, but union-find
  // connectivity is order-independent anyway.
  std::vector<std::size_t> parent(total_labels);
  for (std::size_t i = 0; i < total_labels; ++i) parent[i] = i;
  for (int s = 1; s < stripes; ++s) {
    const int r = stripe_begin(ranks, stripes, s);
    if (r == 0 || r >= ranks) continue;  // empty stripe: no boundary
    for (int b = 0; b < bins; ++b) {
      if (!low[idx(r, b)] || !low[idx(r - 1, b)]) continue;
      const std::size_t a =
          uf_find(parent, static_cast<std::size_t>(label[idx(r - 1, b)]));
      const std::size_t c =
          uf_find(parent, static_cast<std::size_t>(label[idx(r, b)]));
      if (a != c) parent[c] = a;
    }
  }

  // Pass 4 (serial): canonical component ids in order of each component's
  // first row-major cell — the id a single-stripe run would have assigned.
  std::vector<std::int64_t> comp_of_root(total_labels, -1);
  std::size_t components = 0;
  std::vector<std::int64_t> comp(cells, -1);
  for (std::size_t i = 0; i < cells; ++i) {
    if (label[i] < 0) continue;
    const std::size_t root = uf_find(parent, static_cast<std::size_t>(label[i]));
    if (comp_of_root[root] < 0)
      comp_of_root[root] = static_cast<std::int64_t>(components++);
    comp[i] = comp_of_root[root];
  }

  // Pass 5 (serial): accumulate region stats in flat row-major order.
  // This order is the SAME for every stripe count — per-stripe partial
  // sums would differ between thread counts in the last bit of a double,
  // which the %.17g equivalence fingerprint would catch.
  regions.resize(components);
  std::vector<double> perf_weighted(components, 0.0);
  std::vector<double> weight_total(components, 0.0);
  std::vector<std::uint8_t> seen(components, 0);
  for (int r = 0; r < ranks; ++r) {
    for (int b = 0; b < bins; ++b) {
      const std::int64_t c = comp[idx(r, b)];
      if (c < 0) continue;
      VarianceRegion& region = regions[static_cast<std::size_t>(c)];
      if (!seen[static_cast<std::size_t>(c)]) {
        seen[static_cast<std::size_t>(c)] = 1;
        region.rank_lo = region.rank_hi = r;
        region.bin_lo = region.bin_hi = b;
      } else {
        region.rank_lo = std::min(region.rank_lo, r);
        region.rank_hi = std::max(region.rank_hi, r);
        region.bin_lo = std::min(region.bin_lo, b);
        region.bin_hi = std::max(region.bin_hi, b);
      }
      ++region.cells;
      const double perf = map.cell(r, b);
      const double w = map.weight(r, b);
      perf_weighted[static_cast<std::size_t>(c)] += perf * w;
      weight_total[static_cast<std::size_t>(c)] += w;
      region.impact_seconds += (1.0 - perf) * w;
    }
  }
  for (std::size_t c = 0; c < components; ++c)
    regions[c].mean_perf =
        weight_total[c] > 0.0 ? perf_weighted[c] / weight_total[c] : 1.0;

  // Impact order, with the canonical id (== row-major discovery order) as
  // an explicit tiebreak so equal-impact regions sort deterministically.
  std::vector<std::size_t> order(components);
  for (std::size_t c = 0; c < components; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (regions[a].impact_seconds != regions[b].impact_seconds)
      return regions[a].impact_seconds > regions[b].impact_seconds;
    return a < b;
  });
  std::vector<VarianceRegion> sorted;
  sorted.reserve(components);
  for (std::size_t c : order) sorted.push_back(regions[c]);
  return sorted;
}

}  // namespace vapro::core
