#include "src/core/heatmap.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "src/util/check.hpp"
#include "src/util/csv.hpp"
#include "src/util/table.hpp"

namespace vapro::core {

Heatmap::Heatmap(int ranks, double bin_seconds)
    : ranks_(ranks), bin_seconds_(bin_seconds) {
  VAPRO_CHECK(ranks > 0 && bin_seconds > 0.0);
}

void Heatmap::ensure_bins(int bin) {
  if (bin < bins_) return;
  const int new_bins = bin + 1;
  std::vector<double> weighted(static_cast<std::size_t>(ranks_) * new_bins, 0.0);
  std::vector<double> weights(static_cast<std::size_t>(ranks_) * new_bins, 0.0);
  for (int r = 0; r < ranks_; ++r) {
    for (int b = 0; b < bins_; ++b) {
      weighted[static_cast<std::size_t>(r) * new_bins + b] =
          weighted_[static_cast<std::size_t>(r) * bins_ + b];
      weights[static_cast<std::size_t>(r) * new_bins + b] =
          weights_[static_cast<std::size_t>(r) * bins_ + b];
    }
  }
  weighted_ = std::move(weighted);
  weights_ = std::move(weights);
  bins_ = new_bins;
}

void Heatmap::deposit(int rank, double start, double end, double perf) {
  VAPRO_CHECK(rank >= 0 && rank < ranks_);
  if (end <= start) return;
  const int first = static_cast<int>(start / bin_seconds_);
  const int last = static_cast<int>(end / bin_seconds_);
  ensure_bins(last);
  for (int b = first; b <= last; ++b) {
    const double lo = std::max(start, b * bin_seconds_);
    const double hi = std::min(end, (b + 1) * bin_seconds_);
    const double w = hi - lo;
    if (w <= 0.0) continue;
    weighted_[static_cast<std::size_t>(rank) * bins_ + b] += perf * w;
    weights_[static_cast<std::size_t>(rank) * bins_ + b] += w;
  }
}

void Heatmap::merge(const Heatmap& other) {
  VAPRO_CHECK(other.ranks_ == ranks_);
  VAPRO_CHECK(other.bin_seconds_ == bin_seconds_);
  if (other.bins_ == 0) return;
  ensure_bins(other.bins_ - 1);
  for (int r = 0; r < ranks_; ++r) {
    for (int b = 0; b < other.bins_; ++b) {
      weighted_[static_cast<std::size_t>(r) * bins_ + b] +=
          other.weighted_[static_cast<std::size_t>(r) * other.bins_ + b];
      weights_[static_cast<std::size_t>(r) * bins_ + b] +=
          other.weights_[static_cast<std::size_t>(r) * other.bins_ + b];
    }
  }
}

bool Heatmap::has_data(int rank, int bin) const {
  if (bin >= bins_) return false;
  return weights_[static_cast<std::size_t>(rank) * bins_ + bin] > 0.0;
}

double Heatmap::cell(int rank, int bin) const {
  if (!has_data(rank, bin)) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t i = static_cast<std::size_t>(rank) * bins_ + bin;
  return weighted_[i] / weights_[i];
}

double Heatmap::weight(int rank, int bin) const {
  if (bin >= bins_) return 0.0;
  return weights_[static_cast<std::size_t>(rank) * bins_ + bin];
}

double Heatmap::row_mean(int rank) const {
  double num = 0.0, den = 0.0;
  for (int b = 0; b < bins_; ++b) {
    const std::size_t i = static_cast<std::size_t>(rank) * bins_ + b;
    num += weighted_[i];
    den += weights_[i];
  }
  return den > 0.0 ? num / den : std::numeric_limits<double>::quiet_NaN();
}

double Heatmap::overall_mean() const {
  double num = 0.0, den = 0.0;
  for (double w : weights_) den += w;
  for (std::size_t i = 0; i < weighted_.size(); ++i) num += weighted_[i];
  return den > 0.0 ? num / den : std::numeric_limits<double>::quiet_NaN();
}

std::string Heatmap::render_ascii(int max_rows, int max_cols) const {
  // Dark = slow.  Index 0 is the slowest bucket.
  static constexpr char kRamp[] = {'#', '@', '%', '+', '-', '.', ' '};
  constexpr int kLevels = static_cast<int>(sizeof(kRamp));

  const int row_step = std::max(1, (ranks_ + max_rows - 1) / max_rows);
  const int col_step = std::max(1, (bins_ + max_cols - 1) / max_cols);
  std::ostringstream oss;
  oss << "normalized performance heat map (" << ranks_ << " ranks x " << bins_
      << " bins of " << bin_seconds_ << "s; '#'=slow, ' '=fast, '?'=no data)\n";
  for (int r0 = 0; r0 < ranks_; r0 += row_step) {
    oss << "rank ";
    oss.width(5);
    oss << r0 << " |";
    for (int b0 = 0; b0 < bins_; b0 += col_step) {
      double num = 0.0, den = 0.0;
      for (int r = r0; r < std::min(ranks_, r0 + row_step); ++r) {
        for (int b = b0; b < std::min(bins_, b0 + col_step); ++b) {
          const std::size_t i = static_cast<std::size_t>(r) * bins_ + b;
          num += weighted_[i];
          den += weights_[i];
        }
      }
      if (den <= 0.0) {
        oss << '?';
      } else {
        double perf = std::clamp(num / den, 0.0, 1.0);
        oss << kRamp[std::min(kLevels - 1, static_cast<int>(perf * kLevels))];
      }
    }
    oss << "|\n";
  }
  return oss.str();
}

void Heatmap::write_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  std::vector<std::string> header;
  header.push_back("rank\\time_s");
  for (int b = 0; b < bins_; ++b)
    header.push_back(util::fmt(b * bin_seconds_, 3));
  csv.write_row(header);
  for (int r = 0; r < ranks_; ++r) {
    std::vector<std::string> row;
    row.push_back(std::to_string(r));
    for (int b = 0; b < bins_; ++b) {
      double v = cell(r, b);
      row.push_back(std::isnan(v) ? "" : util::fmt(v, 4));
    }
    csv.write_row(row);
  }
}

std::vector<VarianceRegion> find_variance_regions(const Heatmap& map,
                                                  double threshold) {
  const int ranks = map.ranks();
  const int bins = map.bins();
  std::vector<int> visited(static_cast<std::size_t>(ranks) * bins, 0);
  auto idx = [bins](int r, int b) {
    return static_cast<std::size_t>(r) * bins + b;
  };
  auto is_low = [&](int r, int b) {
    if (r < 0 || r >= ranks || b < 0 || b >= bins) return false;
    double v = map.cell(r, b);
    return !std::isnan(v) && v < threshold;
  };

  std::vector<VarianceRegion> regions;
  for (int r = 0; r < ranks; ++r) {
    for (int b = 0; b < bins; ++b) {
      if (visited[idx(r, b)] || !is_low(r, b)) continue;
      // BFS region growing with 4-connectivity.
      VarianceRegion region;
      region.rank_lo = region.rank_hi = r;
      region.bin_lo = region.bin_hi = b;
      double perf_weighted = 0.0, weight_total = 0.0;
      std::deque<std::pair<int, int>> frontier{{r, b}};
      visited[idx(r, b)] = 1;
      while (!frontier.empty()) {
        auto [cr, cb] = frontier.front();
        frontier.pop_front();
        ++region.cells;
        region.rank_lo = std::min(region.rank_lo, cr);
        region.rank_hi = std::max(region.rank_hi, cr);
        region.bin_lo = std::min(region.bin_lo, cb);
        region.bin_hi = std::max(region.bin_hi, cb);
        const double perf = map.cell(cr, cb);
        const double w = map.weight(cr, cb);
        perf_weighted += perf * w;
        weight_total += w;
        region.impact_seconds += (1.0 - perf) * w;
        constexpr int dr[] = {1, -1, 0, 0};
        constexpr int db[] = {0, 0, 1, -1};
        for (int k = 0; k < 4; ++k) {
          int nr = cr + dr[k], nb = cb + db[k];
          if (is_low(nr, nb) && !visited[idx(nr, nb)]) {
            visited[idx(nr, nb)] = 1;
            frontier.emplace_back(nr, nb);
          }
        }
      }
      region.mean_perf = weight_total > 0.0 ? perf_weighted / weight_total : 1.0;
      regions.push_back(region);
    }
  }
  std::sort(regions.begin(), regions.end(),
            [](const VarianceRegion& a, const VarianceRegion& b) {
              return a.impact_seconds > b.impact_seconds;
            });
  return regions;
}

}  // namespace vapro::core
