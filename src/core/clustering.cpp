#include "src/core/clustering.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"
#include "src/util/pipeline.hpp"

namespace vapro::core {

std::size_t ClusteringResult::rare_count() const {
  std::size_t n = 0;
  for (const auto& c : clusters)
    if (c.rare) ++n;
  return n;
}

std::vector<ClusterSeedCache::Entry*> ClusterSeedCache::prepare(
    const std::vector<std::uint64_t>& keys) {
  std::vector<Entry*> out;
  out.reserve(keys.size());
  for (std::uint64_t key : keys) out.push_back(&cache_[key]);
  return out;
}

void ClusterSeedCache::invalidate() {
  cache_.clear();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++invalidations_;
}

void ClusterSeedCache::record(std::uint64_t hits, std::uint64_t misses) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  seed_hits_ += hits;
  seed_misses_ += misses;
}

namespace {

// One row of the norm-sorted sweep.  The workload dims themselves live in
// EntryBlock::dims (one flat column for the whole work item) — sorting
// moves only these 24-byte records, and the sweep's norm comparisons walk
// a contiguous array instead of hopping between per-fragment vectors.
struct NormEntry {
  double norm;
  std::size_t frag_idx;
  std::size_t pos;  // row index into EntryBlock::dims (pre-sort order)
};

// Algorithm 1's input: a dense row-major dims block plus norm-sorted
// entries pointing into it.  All fragments of one work item share a kind
// (one STG edge → computation, one vertex → its op's kind), so every row
// has the same width.
struct EntryBlock {
  std::vector<double> dims;
  std::vector<NormEntry> entries;
  std::size_t dim_count = 0;

  const double* row(std::size_t pos) const {
    return dims.data() + pos * dim_count;
  }
};

// Identical floating-point op order to WorkloadVector::norm()/distance()
// (src/core/fragment.cpp) — the SoA sweep must reproduce the AoS sweep's
// results bit-for-bit, and FP summation order is part of that contract.
double row_norm(const double* d, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += d[i] * d[i];
  return std::sqrt(s);
}

double row_distance(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double seed_to_row_distance(const WorkloadVector& seed, const double* row,
                            std::size_t n) {
  VAPRO_DCHECK(seed.dims.size() == n);
  return row_distance(seed.dims.data(), row, n);
}

// Builds the norm-sorted entry block Algorithm 1 sweeps over.  The sort
// comparator looks only at norms, exactly like the AoS version did, so
// std::sort — whose control flow is a pure function of the comparator
// outcome sequence — produces the same permutation it always did.
EntryBlock make_entries(const Stg& stg, const std::vector<std::size_t>& indices,
                        const ClusterOptions& opts) {
  EntryBlock blk;
  const FragmentColumns& cols = stg.fragments();
  blk.dim_count =
      workload_dim_count(cols.kind(indices.front()), opts.proxies.size());
  blk.dims.resize(indices.size() * blk.dim_count);
  blk.entries.reserve(indices.size());
  for (std::size_t pos = 0; pos < indices.size(); ++pos) {
    const std::size_t idx = indices[pos];
    VAPRO_DCHECK(workload_dim_count(cols.kind(idx), opts.proxies.size()) ==
                 blk.dim_count);
    double* row = blk.dims.data() + pos * blk.dim_count;
    write_workload_dims(cols.kind(idx), cols.counters(idx), cols.args(idx),
                        cols.op(idx), opts.proxies, row);
    blk.entries.push_back(NormEntry{row_norm(row, blk.dim_count), idx, pos});
  }
  std::sort(
      blk.entries.begin(), blk.entries.end(),
      [](const NormEntry& a, const NormEntry& b) { return a.norm < b.norm; });
  return blk;
}

// Absolute radius: relative threshold of the seed norm, with a floor so
// zero-norm seeds (e.g. empty transitions) still form a cluster.
double seed_radius(double norm, const ClusterOptions& opts) {
  return std::max(norm * opts.threshold, 1e-12);
}

// The fresh seeding sweep: every unused entry in norm order seeds a
// cluster that absorbs later unused entries within its radius.  Appends to
// `out`; marks consumed entries in `used`.
void sweep_fresh(const EntryBlock& blk, std::vector<bool>& used,
                 FragmentView first, const ClusterOptions& opts,
                 std::vector<Cluster>& out) {
  const std::vector<NormEntry>& entries = blk.entries;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (used[i]) continue;
    // Smallest-norm unprocessed fragment seeds a new cluster.
    Cluster cluster;
    cluster.from = first.from();
    cluster.to = first.to();
    cluster.kind = first.kind();
    cluster.seed_norm = entries[i].norm;
    cluster.members.push_back(entries[i].frag_idx);
    used[i] = true;
    const double radius = seed_radius(entries[i].norm, opts);
    const double* seed_row = blk.row(entries[i].pos);
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[j].norm - entries[i].norm > radius) break;  // sorted sweep
      if (used[j]) continue;
      if (row_distance(seed_row, blk.row(entries[j].pos), blk.dim_count) <=
          radius) {
        cluster.members.push_back(entries[j].frag_idx);
        used[j] = true;
      }
    }
    cluster.rare =
        cluster.members.size() < static_cast<std::size_t>(opts.min_cluster_size);
    out.push_back(std::move(cluster));
  }
}

}  // namespace

std::vector<Cluster> cluster_fragments(const Stg& stg,
                                       const std::vector<std::size_t>& indices,
                                       const ClusterOptions& opts) {
  std::vector<Cluster> out;
  if (indices.empty()) return out;
  EntryBlock blk = make_entries(stg, indices, opts);
  std::vector<bool> used(blk.entries.size(), false);
  sweep_fresh(blk, used, stg.fragment(indices.front()), opts, out);
  return out;
}

std::vector<Cluster> cluster_fragments_cached(
    const Stg& stg, const std::vector<std::size_t>& indices,
    const ClusterOptions& opts, ClusterSeedCache::Entry* entry,
    ClusterSeedCache* cache) {
  std::vector<Cluster> out;
  if (indices.empty()) return out;
  EntryBlock blk = make_entries(stg, indices, opts);
  const std::vector<NormEntry>& entries = blk.entries;
  std::vector<bool> used(entries.size(), false);
  const FragmentView first = stg.fragment(indices.front());

  // Pass 1: attach fragments to cached seeds.  Seeds are visited in
  // ascending norm order and each fragment joins the first seed that
  // accepts it, so the assignment is deterministic.  A recurring cluster
  // keeps the cached seed's norm, pinning its cross-window baseline key.
  std::uint64_t hits = 0;
  std::vector<bool> survived(entry->seeds.size(), false);
  for (std::size_t s = 0; s < entry->seeds.size(); ++s) {
    const ClusterSeedCache::Seed& seed = entry->seeds[s];
    const double radius = seed_radius(seed.norm, opts);
    // Entries are norm-sorted: only [norm - radius, norm + radius] can
    // join (|‖a‖−‖b‖| ≤ ‖a−b‖), found by binary search.
    auto lo = std::lower_bound(
        entries.begin(), entries.end(), seed.norm - radius,
        [](const NormEntry& e, double v) { return e.norm < v; });
    Cluster cluster;
    cluster.from = first.from();
    cluster.to = first.to();
    cluster.kind = first.kind();
    cluster.seed_norm = seed.norm;
    for (auto it = lo; it != entries.end(); ++it) {
      if (it->norm - seed.norm > radius) break;
      const std::size_t i = static_cast<std::size_t>(it - entries.begin());
      if (used[i]) continue;
      if (seed_to_row_distance(seed.vec, blk.row(it->pos), blk.dim_count) <=
          radius) {
        cluster.members.push_back(it->frag_idx);
        used[i] = true;
        ++hits;
      }
    }
    if (cluster.members.empty()) continue;  // stale seed: dies below
    survived[s] = true;
    cluster.rare =
        cluster.members.size() < static_cast<std::size_t>(opts.min_cluster_size);
    out.push_back(std::move(cluster));
  }

  // Pass 2: whatever no cached seed claimed runs the fresh sweep.
  std::uint64_t misses = 0;
  for (std::size_t i = 0; i < used.size(); ++i)
    if (!used[i]) ++misses;
  const std::size_t fresh_begin = out.size();
  sweep_fresh(blk, used, first, opts, out);

  // The entry becomes this window's seed set: surviving cached seeds keep
  // their original vectors (stable identity), fresh clusters contribute
  // their seed member's vector.  Norm-sorted, capped by evicting the
  // largest norms (the most transient classes) first.
  std::vector<ClusterSeedCache::Seed> next;
  next.reserve(out.size());
  for (std::size_t s = 0; s < entry->seeds.size(); ++s)
    if (survived[s]) next.push_back(entry->seeds[s]);
  for (std::size_t c = fresh_begin; c < out.size(); ++c) {
    // The fresh cluster's seed is its first member (the sweep pushes the
    // seed entry first); rebuild its vector for next window.
    const std::size_t frag = out[c].members.front();
    ClusterSeedCache::Seed seed;
    seed.vec = make_workload_vector(stg.fragment(frag), opts.proxies);
    seed.norm = out[c].seed_norm;
    next.push_back(seed);
  }
  std::stable_sort(next.begin(), next.end(),
                   [](const ClusterSeedCache::Seed& a,
                      const ClusterSeedCache::Seed& b) { return a.norm < b.norm; });
  if (next.size() > ClusterSeedCache::kMaxSeedsPerEntry)
    next.resize(ClusterSeedCache::kMaxSeedsPerEntry);
  entry->seeds = std::move(next);

  if (cache) cache->record(hits, misses);
  return out;
}

namespace {

struct WorkItem {
  std::uint64_t key = 0;  // edge_key() for edges, StateKey for vertices
  bool vertex = false;
  const std::vector<std::size_t>* fragments = nullptr;

  // Seed-cache key: vertices are bit-flipped so an edge and a vertex with
  // the same raw key (possible, if astronomically unlikely, since edge
  // keys are hashes) never share a cache entry.
  std::uint64_t cache_key() const { return vertex ? ~key : key; }
};

// Work items (edge/vertex fragment lists) in deterministic (key, kind)
// order — a total order even if an edge hash ever collides with a vertex
// key.
std::vector<WorkItem> gather_work(const Stg& stg) {
  std::vector<WorkItem> out;
  out.reserve(stg.edge_count() + stg.vertex_count());
  for (const auto& [key, edge] : stg.edges()) {
    if (!edge.fragments.empty())
      out.push_back(WorkItem{key, false, &edge.fragments});
  }
  for (const auto& [key, vertex] : stg.vertices()) {
    if (!vertex.fragments.empty())
      out.push_back(WorkItem{key, true, &vertex.fragments});
  }
  std::sort(out.begin(), out.end(), [](const WorkItem& a, const WorkItem& b) {
    return a.key != b.key ? a.key < b.key : a.vertex < b.vertex;
  });
  return out;
}

// Per-item dispatch: through the cache entry when a cache is attached,
// the plain sweep otherwise.
std::vector<Cluster> cluster_item(const Stg& stg, const WorkItem& item,
                                  const ClusterOptions& opts,
                                  ClusterSeedCache::Entry* entry,
                                  ClusterSeedCache* cache) {
  if (entry) return cluster_fragments_cached(stg, *item.fragments, opts, entry, cache);
  return cluster_fragments(stg, *item.fragments, opts);
}

ClusteringResult merge_item_clusters(
    std::vector<std::vector<Cluster>>&& per_item) {
  ClusteringResult result;
  for (auto& item : per_item) {
    for (auto& c : item) {
      const std::size_t cluster_idx = result.clusters.size();
      for (std::size_t frag : c.members) result.assignment[frag] = cluster_idx;
      result.clusters.push_back(std::move(c));
    }
  }
  return result;
}

}  // namespace

ClusteringResult cluster_stg(const Stg& stg, const ClusterOptions& opts) {
  auto work = gather_work(stg);
  std::vector<std::vector<Cluster>> per_item(work.size());
  for (std::size_t i = 0; i < work.size(); ++i)
    per_item[i] = cluster_item(stg, work[i], opts, nullptr, nullptr);
  return merge_item_clusters(std::move(per_item));
}

ClusteringResult cluster_stg_parallel(const Stg& stg,
                                      const ClusterOptions& opts,
                                      util::WorkerPool* pool,
                                      obs::TraceRecorder* trace,
                                      ClusterSeedCache* cache) {
  auto work = gather_work(stg);
  // Cache entries are created on this (coordinating) thread before any
  // worker starts, so workers only ever touch their own item's entry.
  std::vector<ClusterSeedCache::Entry*> entries(work.size(), nullptr);
  if (cache) {
    std::vector<std::uint64_t> keys;
    keys.reserve(work.size());
    for (const WorkItem& item : work) keys.push_back(item.cache_key());
    entries = cache->prepare(keys);
  }
  std::vector<std::vector<Cluster>> per_item(work.size());
  if (!pool || pool->lanes() == 1 || work.size() < 2) {
    for (std::size_t i = 0; i < work.size(); ++i)
      per_item[i] = cluster_item(stg, work[i], opts, entries[i], cache);
    return merge_item_clusters(std::move(per_item));
  }
  // Each lane writes only its own slots below (lane-indexed, and the hook
  // runs on the lane's own thread), so no locking is needed.
  std::vector<std::uint64_t> lane_t0(pool->lanes(), 0);
  std::vector<std::uint8_t> lane_started(pool->lanes(), 0);
  const std::size_t failed = pool->run(
      work.size(),
      [&](std::size_t i, std::size_t lane) {
        if (trace && !lane_started[lane]) {
          lane_started[lane] = 1;
          lane_t0[lane] = trace->now_ns();
        }
        per_item[i] = cluster_item(stg, work[i], opts, entries[i], cache);
      },
      [&](const util::WorkerPool::LaneReport& report) {
        if (trace)
          trace->complete(
              "cluster.shard", "obs", lane_t0[report.lane],
              {obs::TraceRecorder::arg("lane",
                                       static_cast<std::uint64_t>(report.lane)),
               obs::TraceRecorder::arg("items", report.tasks)});
      });
  if (failed > 0) {
    // A task that threw left its slot empty (an item always yields at
    // least one cluster) and — for the cached path — its entry untouched
    // (cluster_fragments_cached installs the new seed set only at the
    // end), so a serial retry of just those items is byte-equivalent to a
    // clean run.
    for (std::size_t i = 0; i < work.size(); ++i)
      if (per_item[i].empty())
        per_item[i] = cluster_item(stg, work[i], opts, entries[i], cache);
  }
  return merge_item_clusters(std::move(per_item));
}

ClusteringResult cluster_stg_parallel(const Stg& stg,
                                      const ClusterOptions& opts,
                                      int threads,
                                      obs::TraceRecorder* trace,
                                      ClusterSeedCache* cache) {
  VAPRO_CHECK(threads >= 1);
  if (threads == 1)
    return cluster_stg_parallel(stg, opts,
                                static_cast<util::WorkerPool*>(nullptr), trace,
                                cache);
  util::WorkerPool pool(static_cast<std::size_t>(threads));
  return cluster_stg_parallel(stg, opts, &pool, trace, cache);
}

}  // namespace vapro::core
