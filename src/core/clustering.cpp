#include "src/core/clustering.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/util/check.hpp"

namespace vapro::core {

std::size_t ClusteringResult::rare_count() const {
  std::size_t n = 0;
  for (const auto& c : clusters)
    if (c.rare) ++n;
  return n;
}

std::vector<Cluster> cluster_fragments(const Stg& stg,
                                       const std::vector<std::size_t>& indices,
                                       const ClusterOptions& opts) {
  std::vector<Cluster> out;
  if (indices.empty()) return out;

  struct Entry {
    std::size_t frag_idx;
    WorkloadVector vec;
    double norm;
  };
  std::vector<Entry> entries;
  entries.reserve(indices.size());
  for (std::size_t idx : indices) {
    WorkloadVector v = make_workload_vector(stg.fragment(idx), opts.proxies);
    double n = v.norm();
    entries.push_back(Entry{idx, std::move(v), n});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.norm < b.norm; });

  const Fragment& first = stg.fragment(indices.front());
  std::vector<bool> used(entries.size(), false);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (used[i]) continue;
    // Smallest-norm unprocessed fragment seeds a new cluster.
    Cluster cluster;
    cluster.from = first.from;
    cluster.to = first.to;
    cluster.kind = first.kind;
    cluster.seed_norm = entries[i].norm;
    cluster.members.push_back(entries[i].frag_idx);
    used[i] = true;
    // Absolute radius: relative threshold of the seed norm, with a floor so
    // zero-norm seeds (e.g. empty transitions) still form a cluster.
    const double radius = std::max(entries[i].norm * opts.threshold, 1e-12);
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[j].norm - entries[i].norm > radius) break;  // sorted sweep
      if (used[j]) continue;
      if (entries[i].vec.distance(entries[j].vec) <= radius) {
        cluster.members.push_back(entries[j].frag_idx);
        used[j] = true;
      }
    }
    cluster.rare =
        cluster.members.size() < static_cast<std::size_t>(opts.min_cluster_size);
    out.push_back(std::move(cluster));
  }
  return out;
}

namespace {

// Work items (edge/vertex fragment lists) in deterministic key order.
std::vector<const std::vector<std::size_t>*> gather_work(const Stg& stg) {
  std::vector<std::pair<std::uint64_t, const std::vector<std::size_t>*>> keyed;
  keyed.reserve(stg.edge_count() + stg.vertex_count());
  for (const auto& [key, edge] : stg.edges()) {
    if (!edge.fragments.empty()) keyed.emplace_back(key, &edge.fragments);
  }
  for (const auto& [key, vertex] : stg.vertices()) {
    if (!vertex.fragments.empty()) keyed.emplace_back(key, &vertex.fragments);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<const std::vector<std::size_t>*> out;
  out.reserve(keyed.size());
  for (const auto& [key, frags] : keyed) out.push_back(frags);
  return out;
}

ClusteringResult merge_item_clusters(
    std::vector<std::vector<Cluster>>&& per_item) {
  ClusteringResult result;
  for (auto& item : per_item) {
    for (auto& c : item) {
      const std::size_t cluster_idx = result.clusters.size();
      for (std::size_t frag : c.members) result.assignment[frag] = cluster_idx;
      result.clusters.push_back(std::move(c));
    }
  }
  return result;
}

}  // namespace

ClusteringResult cluster_stg(const Stg& stg, const ClusterOptions& opts) {
  auto work = gather_work(stg);
  std::vector<std::vector<Cluster>> per_item(work.size());
  for (std::size_t i = 0; i < work.size(); ++i)
    per_item[i] = cluster_fragments(stg, *work[i], opts);
  return merge_item_clusters(std::move(per_item));
}

ClusteringResult cluster_stg_parallel(const Stg& stg,
                                      const ClusterOptions& opts,
                                      int threads,
                                      obs::TraceRecorder* trace) {
  VAPRO_CHECK(threads >= 1);
  auto work = gather_work(stg);
  if (threads == 1 || work.size() < 2) {
    std::vector<std::vector<Cluster>> per_item(work.size());
    for (std::size_t i = 0; i < work.size(); ++i)
      per_item[i] = cluster_fragments(stg, *work[i], opts);
    return merge_item_clusters(std::move(per_item));
  }
  std::vector<std::vector<Cluster>> per_item(work.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    const std::uint64_t t0 = trace ? trace->now_ns() : 0;
    std::uint64_t items = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= work.size()) break;
      per_item[i] = cluster_fragments(stg, *work[i], opts);
      ++items;
    }
    if (trace)
      trace->complete("cluster.worker", "obs", t0,
                      {obs::TraceRecorder::arg("items", items)});
  };
  std::vector<std::thread> pool;
  const int n = std::min<int>(threads, static_cast<int>(work.size()));
  pool.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return merge_item_clusters(std::move(per_item));
}

}  // namespace vapro::core
