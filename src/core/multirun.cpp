#include "src/core/multirun.hpp"

#include <cmath>
#include <sstream>

#include "src/util/table.hpp"

namespace vapro::core {

MultiRunStudy::MultiRunStudy(VaproOptions opts)
    : opts_(std::move(opts)), baseline_(opts_.cluster.threshold) {
  // Cross-run scoring needs no diagnosis; keep per-run cost minimal.
  opts_.run_diagnosis = false;
}

RunSummary MultiRunStudy::execute(
    sim::Simulator& simulator, const sim::Simulator::RankProgram& program) {
  // The session plumbs the study's baseline into its server so every run
  // is normalized against the best fragments of all runs so far.
  VaproSession session(simulator, opts_, &baseline_);
  auto result = simulator.run(program);

  RunSummary summary;
  summary.index = static_cast<int>(runs_.size());
  summary.makespan = result.makespan;
  const double mean = session.computation_map().overall_mean();
  summary.mean_computation_perf = std::isnan(mean) ? 1.0 : mean;
  double total = 0.0;
  for (double t : result.finish_times) total += t;
  summary.coverage = session.coverage(total);
  summary.fragments = session.fragments_recorded();
  runs_.push_back(summary);
  return summary;
}

std::vector<int> MultiRunStudy::slow_runs(double threshold) const {
  std::vector<int> out;
  for (const RunSummary& r : runs_) {
    if (r.mean_computation_perf < threshold) out.push_back(r.index);
  }
  return out;
}

std::string MultiRunStudy::summary(double threshold) const {
  std::ostringstream oss;
  util::TextTable table({"run", "makespan(s)", "mean comp perf", "verdict"});
  for (const RunSummary& r : runs_) {
    table.add_row({std::to_string(r.index), util::fmt(r.makespan, 3),
                   util::fmt(r.mean_computation_perf, 3),
                   r.mean_computation_perf < threshold ? "SLOW" : "ok"});
  }
  table.print(oss);
  return oss.str();
}

}  // namespace vapro::core
