#include "src/core/scoreboard.hpp"

#include <cmath>

namespace vapro::core {

namespace {

// Heat-map categories an injection of `kind` can plausibly surface in.
// IO and network interference span every rank for most of the run, so
// without a constraint any unrelated region would claim them.  The
// CPU-side kinds slow computation directly AND make everyone else wait at
// the victims' collectives — both the computation region and its
// communication echo are genuine manifestations of the injection.  An IO
// injection must be found in the IO map itself: crediting its wait-time
// echo would make cells for apps that never touch the filesystem look
// detected.
std::vector<std::string> allowed_categories(sim::NoiseKind kind) {
  switch (kind) {
    case sim::NoiseKind::kIoInterference: return {"io"};
    case sim::NoiseKind::kNetworkCongestion: return {"communication"};
    default: return {"computation", "communication"};
  }
}

obs::QualityTruth to_truth(const sim::GroundTruthEvent& gt) {
  obs::QualityTruth t;
  t.t_lo = gt.t_begin;
  t.t_hi = gt.t_end;
  t.rank_lo = gt.rank_lo;
  t.rank_hi = gt.rank_hi;
  t.expected_factors = expected_factor_classes(gt.kind);
  t.allowed_categories = allowed_categories(gt.kind);
  return t;
}

obs::QualityDetection to_detection(const VarianceRegion& r,
                                   double bin_seconds,
                                   const std::string& category) {
  obs::QualityDetection d;
  d.t_lo = r.time_lo(bin_seconds);
  d.t_hi = r.time_hi(bin_seconds);
  d.rank_lo = r.rank_lo;
  d.rank_hi = r.rank_hi;
  d.impact_seconds = r.impact_seconds;
  d.category = category;
  return d;
}

}  // namespace

std::vector<std::string> expected_factor_classes(sim::NoiseKind kind) {
  // Names must match factor_name() exactly; several tree levels are
  // accepted because the progressive diagnoser stops descending once a
  // stage's major factor is unambiguous.
  switch (kind) {
    case sim::NoiseKind::kCpuContention:
      return {"involuntary context switch", "context switch", "suspension"};
    case sim::NoiseKind::kMemoryBandwidth:
    case sim::NoiseKind::kSlowDram:
      return {"DRAM bound", "memory bound", "backend bound"};
    case sim::NoiseKind::kL2CacheBug:
      // The erratum evicts to DRAM, so either cache level is a fair call.
      return {"L2 bound", "DRAM bound", "memory bound", "backend bound"};
    case sim::NoiseKind::kPageFaultStorm:
      return {"soft page fault", "hard page fault", "page fault",
              "suspension"};
    case sim::NoiseKind::kIoInterference:
      return {"category:io"};
    case sim::NoiseKind::kNetworkCongestion:
      return {"category:communication"};
  }
  return {};
}

void journal_ground_truth(obs::Journal& journal,
                          const std::vector<sim::GroundTruthEvent>& truths,
                          double virtual_time) {
  for (const sim::GroundTruthEvent& gt : truths)
    journal.emit(
        "ground_truth", /*window=*/-1, virtual_time,
        {obs::JournalField::str("kind", sim::noise_kind_name(gt.kind)),
         obs::JournalField::num("t_begin", gt.t_begin),
         obs::JournalField::num("t_end", gt.t_end),
         obs::JournalField::num("rank_lo",
                                static_cast<std::int64_t>(gt.rank_lo)),
         obs::JournalField::num("rank_hi",
                                static_cast<std::int64_t>(gt.rank_hi)),
         obs::JournalField::num("magnitude", gt.magnitude)});
}

std::vector<sim::GroundTruthEvent> ground_truth_from_journal(
    const std::vector<obs::JournalEvent>& events) {
  std::vector<sim::GroundTruthEvent> out;
  for (const obs::JournalEvent& ev : events) {
    if (ev.type != "ground_truth") continue;
    sim::GroundTruthEvent gt;
    if (!sim::noise_kind_from_name(ev.str("kind"), &gt.kind)) continue;
    gt.t_begin = ev.number("t_begin");
    gt.t_end = ev.number("t_end");
    gt.rank_lo = static_cast<int>(std::llround(ev.number("rank_lo")));
    gt.rank_hi = static_cast<int>(std::llround(ev.number("rank_hi")));
    gt.magnitude = ev.number("magnitude", 1.0);
    out.push_back(gt);
  }
  return out;
}

obs::QualityScore score_run_quality(
    const std::vector<sim::GroundTruthEvent>& truths,
    const RunConclusions& run, const obs::QualityMatchOptions& opts) {
  std::vector<obs::QualityTruth> qtruths;
  qtruths.reserve(truths.size());
  for (const sim::GroundTruthEvent& gt : truths)
    qtruths.push_back(to_truth(gt));

  std::vector<obs::QualityDetection> detections;
  std::vector<std::string> top_factors;
  for (FactorId id : run.culprits)
    top_factors.emplace_back(factor_name(id));

  struct Category {
    const std::vector<VarianceRegion>* regions;
    const char* name;
  };
  const Category categories[] = {
      {&run.computation, "computation"},
      {&run.communication, "communication"},
      {&run.io, "io"},
  };
  for (const Category& cat : categories) {
    bool matched = false;
    for (const VarianceRegion& r : *cat.regions) {
      const obs::QualityDetection d =
          to_detection(r, run.bin_seconds, cat.name);
      for (const obs::QualityTruth& t : qtruths)
        if (obs::quality_match(t, d, opts)) {
          matched = true;
          break;
        }
      detections.push_back(d);
    }
    if (matched) top_factors.emplace_back(std::string("category:") + cat.name);
  }
  return obs::score_quality(qtruths, detections, top_factors, opts);
}

}  // namespace vapro::core
