// Journal re-ingestion: rebuild a run's detection/diagnosis conclusions
// from its event journal (src/obs/journal) instead of from raw traces.
//
// The journal records conclusions at full precision (%.17g), so a
// reconstructed summary prints character-identically to the original run:
// variance regions come from each category's highest-revision
// variance_region/variance_clear events (the final end-of-run snapshot, if
// the producer called journal_detection_snapshot), rare findings and
// diagnosis findings are replayed verbatim, and the culprit list comes
// from the diagnosis_finished event.  `vapro_replay --from-journal FILE`
// is the CLI entry point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/diagnosis.hpp"
#include "src/core/server.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/latency.hpp"

namespace vapro::core {

struct JournalSummary {
  bool ok = false;
  std::string error;

  std::uint64_t events = 0;          // journal events consumed
  std::size_t windows = 0;           // "window" events seen
  double virtual_time = 0.0;         // latest event virtual time
  double bin_seconds = 0.0;          // from the region events (0 if none)

  // Highest-revision region set per FragmentKind index.
  std::vector<VarianceRegion> regions[3];
  std::vector<RareFinding> rare_findings;
  DiagnosisReport diagnosis;
  bool diagnosis_finished = false;
  std::size_t pmu_reprograms = 0;
  std::size_t alerts = 0;

  // Self-diagnosis timing: window_latency events in journal order, plus
  // whether a terminal critical_path event was seen.  render_journal_summary
  // re-folds these through a CriticalPathTracker with the live defaults, so
  // the replayed table is byte-identical to the producer's live view.
  std::vector<obs::WindowLatencyRecord> window_latency;
  std::size_t critical_path_events = 0;
};

// Folds a parsed event stream into a summary; `ok` is false only on
// structurally inconsistent input (e.g. a region event without a kind).
JournalSummary summarize_journal(const std::vector<obs::JournalEvent>& events);

// read_journal + summarize_journal; `ok` is false on read errors too.
JournalSummary summarize_journal_file(const std::string& path);

// Human-readable rendering mirroring render_report's region/rare tables
// and DiagnosisReport::summary().
std::string render_journal_summary(const JournalSummary& summary);

// Reverse of factor_name(); FactorId::kRoot when unknown.
FactorId factor_from_name(const std::string& name);

}  // namespace vapro::core
