#include "src/core/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/table.hpp"

namespace vapro::core {

namespace {

const char* color_for(double perf) {
  // 256-color ANSI ramp: red (slow) → yellow → green (fast).
  if (perf < 0.4) return "\x1b[48;5;160m";
  if (perf < 0.6) return "\x1b[48;5;202m";
  if (perf < 0.85) return "\x1b[48;5;220m";
  if (perf < 0.95) return "\x1b[48;5;112m";
  return "\x1b[48;5;28m";
}

void append_category(std::ostringstream& oss, const VaproSession& session,
                     FragmentKind kind, const Heatmap& map,
                     const ReportOptions& opts, double bin_seconds) {
  auto regions = session.locate(kind);
  oss << "\n## " << fragment_kind_name(kind) << "\n";
  if (opts.include_heatmaps && map.bins() > 0) {
    oss << (opts.ansi_color
                ? render_ansi(map, opts.heatmap_rows, opts.heatmap_cols)
                : map.render_ascii(opts.heatmap_rows, opts.heatmap_cols));
  }
  oss << render_region_table(regions, bin_seconds);
}

}  // namespace

std::string render_region_table(const std::vector<VarianceRegion>& regions,
                                double bin_seconds, std::size_t limit) {
  std::ostringstream oss;
  if (regions.empty()) {
    oss << "no variance regions\n";
    return oss.str();
  }
  util::TextTable table(
      {"ranks", "t_lo(s)", "t_hi(s)", "mean perf", "loss%", "impact(frag·s)"});
  std::size_t shown = 0;
  for (const auto& r : regions) {
    if (++shown > limit) break;
    table.add_row({std::to_string(r.rank_lo) + "-" + std::to_string(r.rank_hi),
                   util::fmt(r.time_lo(bin_seconds), 2),
                   util::fmt(r.time_hi(bin_seconds), 2),
                   util::fmt(r.mean_perf, 3),
                   util::fmt(100 * (1 - r.mean_perf), 1),
                   util::fmt(r.impact_seconds, 3)});
  }
  table.print(oss);
  if (regions.size() > limit)
    oss << "(" << regions.size() - limit << " smaller regions omitted)\n";
  return oss.str();
}

std::string render_rare_table(const std::vector<RareFinding>& findings,
                              std::size_t limit) {
  std::ostringstream oss;
  util::TextTable table({"state", "kind", "execs", "total(s)", "longest(s)"});
  std::size_t shown = 0;
  for (const auto& f : findings) {
    if (++shown > limit) break;
    table.add_row({f.state, fragment_kind_name(f.kind),
                   std::to_string(f.executions), util::fmt(f.total_seconds, 3),
                   util::fmt(f.longest_seconds, 3)});
  }
  table.print(oss);
  return oss.str();
}

std::string render_ansi(const Heatmap& map, int max_rows, int max_cols) {
  std::ostringstream oss;
  const int row_step = std::max(1, (map.ranks() + max_rows - 1) / max_rows);
  const int col_step = std::max(1, (map.bins() + max_cols - 1) / max_cols);
  oss << "ranks 0-" << map.ranks() - 1 << ", " << map.bins() << " bins of "
      << map.bin_seconds() << "s (red=slow, green=fast, '.'=no data)\n";
  for (int r0 = 0; r0 < map.ranks(); r0 += row_step) {
    for (int b0 = 0; b0 < map.bins(); b0 += col_step) {
      double num = 0.0, den = 0.0;
      for (int r = r0; r < std::min(map.ranks(), r0 + row_step); ++r) {
        for (int b = b0; b < std::min(map.bins(), b0 + col_step); ++b) {
          if (!map.has_data(r, b)) continue;
          num += map.cell(r, b) * map.weight(r, b);
          den += map.weight(r, b);
        }
      }
      if (den <= 0.0) {
        oss << '.';
      } else {
        oss << color_for(num / den) << ' ' << "\x1b[0m";
      }
    }
    oss << '\n';
  }
  return oss.str();
}

std::string render_report(const VaproSession& session,
                          const ReportOptions& opts) {
  std::ostringstream oss;
  oss << "# Vapro report\n";
  oss << "fragments recorded: " << session.fragments_recorded()
      << "  (~" << session.bytes_recorded() / 1024 << " KiB)\n";
  oss << "analysis windows: " << session.server().windows_processed() << "\n";

  const double bin = session.computation_map().bin_seconds();
  append_category(oss, session, FragmentKind::kComputation,
                  session.computation_map(), opts, bin);
  append_category(oss, session, FragmentKind::kCommunication,
                  session.communication_map(), opts, bin);
  append_category(oss, session, FragmentKind::kIo, session.io_map(), opts,
                  bin);

  if (opts.include_rare_findings && !session.rare_findings().empty()) {
    oss << "\n## rare execution paths (check manually — Algorithm 1 line 8)\n";
    oss << render_rare_table(session.rare_findings());
  }

  if (opts.include_diagnosis) {
    oss << "\n## diagnosis\n" << session.diagnosis().summary() << '\n';
  }
  return oss.str();
}

int write_csv_bundle(const VaproSession& session,
                     const std::string& directory) {
  session.computation_map().write_csv(directory + "/computation.csv");
  session.communication_map().write_csv(directory + "/communication.csv");
  session.io_map().write_csv(directory + "/io.csv");
  return 3;
}

}  // namespace vapro::core
