#include "src/core/breakdown.hpp"

#include <algorithm>
#include <array>

#include "src/util/check.hpp"

namespace vapro::core {

namespace {

using pmu::Counter;

const std::array<FactorDef, kFactorCount>& factor_table() {
  static const std::array<FactorDef, kFactorCount> kTable = [] {
    std::array<FactorDef, kFactorCount> t{};
    auto def = [&t](FactorId id, std::string_view name, FactorId parent,
                    int stage, bool quantified,
                    std::vector<Counter> required) {
      t[static_cast<std::size_t>(id)] =
          FactorDef{id, name, parent, stage, quantified, std::move(required)};
    };
    def(FactorId::kRoot, "root", FactorId::kRoot, 0, true, {});
    // S1 — top-down level 1 + OS suspension.
    def(FactorId::kFrontend, "frontend bound", FactorId::kRoot, 1, true,
        {Counter::kSlotsFrontend});
    def(FactorId::kBadSpec, "bad speculation", FactorId::kRoot, 1, true,
        {Counter::kSlotsBadSpec});
    def(FactorId::kRetiring, "retiring", FactorId::kRoot, 1, true,
        {Counter::kSlotsRetiring});
    def(FactorId::kBackend, "backend bound", FactorId::kRoot, 1, true,
        {Counter::kSlotsBackend});
    // Suspension = wall − on-CPU; both from fixed counters.
    def(FactorId::kSuspension, "suspension", FactorId::kRoot, 1, true, {});
    // S2.
    def(FactorId::kCoreBound, "core bound", FactorId::kBackend, 2, true,
        {Counter::kStallsCore});
    def(FactorId::kMemoryBound, "memory bound", FactorId::kBackend, 2, true,
        {Counter::kSlotsBackend, Counter::kStallsCore});
    def(FactorId::kPageFault, "page fault", FactorId::kSuspension, 2, false,
        {});
    def(FactorId::kContextSwitch, "context switch", FactorId::kSuspension, 2,
        false, {});
    def(FactorId::kSignal, "signal", FactorId::kSuspension, 2, false, {});
    // S3.
    def(FactorId::kL1Bound, "L1 bound", FactorId::kMemoryBound, 3, true,
        {Counter::kStallsL1});
    def(FactorId::kL2Bound, "L2 bound", FactorId::kMemoryBound, 3, true,
        {Counter::kStallsL2});
    def(FactorId::kL3Bound, "L3 bound", FactorId::kMemoryBound, 3, true,
        {Counter::kStallsL3});
    def(FactorId::kDramBound, "DRAM bound", FactorId::kMemoryBound, 3, true,
        {Counter::kStallsDram});
    def(FactorId::kSoftPageFault, "soft page fault", FactorId::kPageFault, 3,
        false, {});
    def(FactorId::kHardPageFault, "hard page fault", FactorId::kPageFault, 3,
        false, {});
    def(FactorId::kVoluntaryCs, "voluntary context switch",
        FactorId::kContextSwitch, 3, false, {});
    def(FactorId::kInvoluntaryCs, "involuntary context switch",
        FactorId::kContextSwitch, 3, false, {});
    return t;
  }();
  return kTable;
}

}  // namespace

const FactorDef& factor_def(FactorId id) {
  VAPRO_CHECK(id != FactorId::kCount);
  return factor_table()[static_cast<std::size_t>(id)];
}

std::vector<FactorId> children_of(FactorId id) {
  std::vector<FactorId> out;
  for (const FactorDef& def : factor_table()) {
    if (def.id != FactorId::kRoot && def.parent == id) out.push_back(def.id);
  }
  return out;
}

std::string_view factor_name(FactorId id) { return factor_def(id).name; }

double factor_value(FactorId id, const pmu::CounterSample& delta,
                    const pmu::MachineParams& machine) {
  using pmu::Counter;
  const double slot_seconds =
      1.0 / (machine.pipeline_width * machine.frequency_hz);
  switch (id) {
    case FactorId::kFrontend:
      return delta[Counter::kSlotsFrontend] * slot_seconds;
    case FactorId::kBadSpec:
      return delta[Counter::kSlotsBadSpec] * slot_seconds;
    case FactorId::kRetiring:
      return delta[Counter::kSlotsRetiring] * slot_seconds;
    case FactorId::kBackend:
      return delta[Counter::kSlotsBackend] * slot_seconds;
    case FactorId::kSuspension:
      // Wall cycles minus unhalted cycles = time off-CPU.
      return std::max(0.0, (delta[Counter::kTsc] -
                            delta[Counter::kCpuClkUnhalted]) /
                               machine.frequency_hz);
    case FactorId::kCoreBound:
      return delta[Counter::kStallsCore] * slot_seconds;
    case FactorId::kMemoryBound:
      // Derived: memory bound = backend − core bound (saves a counter).
      return std::max(0.0, (delta[Counter::kSlotsBackend] -
                            delta[Counter::kStallsCore]) *
                               slot_seconds);
    case FactorId::kL1Bound:
      return delta[Counter::kStallsL1] * slot_seconds;
    case FactorId::kL2Bound:
      return delta[Counter::kStallsL2] * slot_seconds;
    case FactorId::kL3Bound:
      return delta[Counter::kStallsL3] * slot_seconds;
    case FactorId::kDramBound:
      return delta[Counter::kStallsDram] * slot_seconds;
    case FactorId::kPageFault:
      return delta[Counter::kPageFaultsSoft] + delta[Counter::kPageFaultsHard];
    case FactorId::kContextSwitch:
      return delta[Counter::kCtxSwitchVoluntary] +
             delta[Counter::kCtxSwitchInvoluntary];
    case FactorId::kSignal:
      return delta[Counter::kSignals];
    case FactorId::kSoftPageFault:
      return delta[Counter::kPageFaultsSoft];
    case FactorId::kHardPageFault:
      return delta[Counter::kPageFaultsHard];
    case FactorId::kVoluntaryCs:
      return delta[Counter::kCtxSwitchVoluntary];
    case FactorId::kInvoluntaryCs:
      return delta[Counter::kCtxSwitchInvoluntary];
    case FactorId::kRoot:
    case FactorId::kCount:
      break;
  }
  VAPRO_CHECK_MSG(false, "factor_value on invalid factor");
}

std::vector<pmu::Counter> counters_for(const std::vector<FactorId>& factors) {
  std::vector<pmu::Counter> out;
  for (FactorId f : factors) {
    for (pmu::Counter c : factor_def(f).required_programmable) {
      if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
    }
  }
  return out;
}

}  // namespace vapro::core
