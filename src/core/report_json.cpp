#include "src/core/report_json.hpp"

#include <cmath>
#include <sstream>

namespace vapro::core {

namespace {

void append_number(std::ostringstream& oss, double v) {
  if (std::isfinite(v)) {
    oss << v;
  } else {
    oss << "null";
  }
}

void append_regions(std::ostringstream& oss, const VaproSession& session,
                    FragmentKind kind, double bin_seconds) {
  oss << '"' << fragment_kind_name(kind) << "\":[";
  bool first = true;
  for (const VarianceRegion& r : session.locate(kind)) {
    if (!first) oss << ',';
    first = false;
    oss << "{\"rank_lo\":" << r.rank_lo << ",\"rank_hi\":" << r.rank_hi
        << ",\"t_lo\":";
    append_number(oss, r.time_lo(bin_seconds));
    oss << ",\"t_hi\":";
    append_number(oss, r.time_hi(bin_seconds));
    oss << ",\"mean_perf\":";
    append_number(oss, r.mean_perf);
    oss << ",\"impact_seconds\":";
    append_number(oss, r.impact_seconds);
    oss << ",\"cells\":" << r.cells << '}';
  }
  oss << ']';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::ostringstream oss;
  for (char c : s) {
    switch (c) {
      case '"': oss << "\\\""; break;
      case '\\': oss << "\\\\"; break;
      case '\n': oss << "\\n"; break;
      case '\r': oss << "\\r"; break;
      case '\t': oss << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          oss << buf;
        } else {
          oss << c;
        }
    }
  }
  return oss.str();
}

std::string report_json(const VaproSession& session,
                        double total_execution_seconds) {
  std::ostringstream oss;
  const double bin = session.computation_map().bin_seconds();
  oss << "{\"fragments\":" << session.fragments_recorded()
      << ",\"bytes\":" << session.bytes_recorded()
      << ",\"windows\":" << session.server().windows_processed();
  if (total_execution_seconds > 0.0) {
    oss << ",\"coverage\":";
    append_number(oss, session.coverage(total_execution_seconds));
  }

  oss << ",\"regions\":{";
  append_regions(oss, session, FragmentKind::kComputation, bin);
  oss << ',';
  append_regions(oss, session, FragmentKind::kCommunication, bin);
  oss << ',';
  append_regions(oss, session, FragmentKind::kIo, bin);
  oss << '}';

  oss << ",\"rare_findings\":[";
  bool first = true;
  for (const RareFinding& f : session.rare_findings()) {
    if (!first) oss << ',';
    first = false;
    oss << "{\"state\":\"" << json_escape(f.state) << "\",\"kind\":\""
        << fragment_kind_name(f.kind) << "\",\"executions\":" << f.executions
        << ",\"total_seconds\":";
    append_number(oss, f.total_seconds);
    oss << '}';
  }
  oss << ']';

  const DiagnosisReport& diag = session.diagnosis();
  oss << ",\"diagnosis\":{\"finished\":"
      << (session.server().diagnosis_finished() ? "true" : "false")
      << ",\"total_variance_seconds\":";
  append_number(oss, diag.total_variance_seconds);
  oss << ",\"findings\":[";
  first = true;
  for (const DiagnosisFinding& f : diag.findings) {
    if (!first) oss << ',';
    first = false;
    oss << "{\"factor\":\"" << json_escape(std::string(factor_name(f.id)))
        << "\",\"stage\":" << f.stage << ",\"share\":";
    append_number(oss, f.share);
    oss << ",\"duration_share\":";
    append_number(oss, f.duration_share);
    oss << ",\"major\":" << (f.major ? "true" : "false") << '}';
  }
  oss << "],\"culprits\":[";
  first = true;
  for (FactorId f : diag.culprits) {
    if (!first) oss << ',';
    first = false;
    oss << '"' << json_escape(std::string(factor_name(f))) << '"';
  }
  oss << "]}}";
  return oss.str();
}

}  // namespace vapro::core
