// The variance breakdown model of §4.1 (paper Fig 10).
//
// A hierarchy of factors accounts for the execution time of fixed-workload
// computation fragments:
//
//   S1:  frontend | bad speculation | retiring | backend | suspension
//   S2:  backend    → core bound, memory bound
//        suspension → page fault, context switch, signal
//   S3:  memory     → L1 / L2 / L3 / DRAM bound
//        page fault → soft / hard
//        context sw → voluntary / involuntary
//
// Factors are either *time-quantified* — a PMU formula converts their
// counters directly to seconds (the "formula-based method" of §4.2, e.g.
// frontend time = SLOTS_FRONTEND / (width · frequency)) — or *count-only*
// (page faults, context switches, signals), whose per-event time cost must
// be estimated statistically (the OLS method, diagnosis.hpp).
#pragma once

#include <string_view>
#include <vector>

#include "src/pmu/core_model.hpp"
#include "src/pmu/counters.hpp"

namespace vapro::core {

enum class FactorId : int {
  kRoot = 0,
  // S1
  kFrontend,
  kBadSpec,
  kRetiring,
  kBackend,
  kSuspension,
  // S2
  kCoreBound,
  kMemoryBound,
  kPageFault,
  kContextSwitch,
  kSignal,
  // S3
  kL1Bound,
  kL2Bound,
  kL3Bound,
  kDramBound,
  kSoftPageFault,
  kHardPageFault,
  kVoluntaryCs,
  kInvoluntaryCs,
  kCount,
};

inline constexpr int kFactorCount = static_cast<int>(FactorId::kCount);

struct FactorDef {
  FactorId id = FactorId::kRoot;
  std::string_view name;
  FactorId parent = FactorId::kRoot;
  int stage = 0;  // 1, 2, 3 (0 for root)
  bool time_quantified = false;
  // Programmable counters that must be active for factor_value to be
  // meaningful (free counters need not be listed).
  std::vector<pmu::Counter> required_programmable;
};

const FactorDef& factor_def(FactorId id);
std::vector<FactorId> children_of(FactorId id);
std::string_view factor_name(FactorId id);

// Per-fragment factor value from a counter delta: seconds for
// time-quantified factors, event count otherwise.
double factor_value(FactorId id, const pmu::CounterSample& delta,
                    const pmu::MachineParams& machine);

// Union of programmable counters needed to evaluate all `factors` at once.
std::vector<pmu::Counter> counters_for(const std::vector<FactorId>& factors);

}  // namespace vapro::core
