#include "src/core/fragment.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace vapro::core {

const char* fragment_kind_name(FragmentKind k) {
  switch (k) {
    case FragmentKind::kComputation: return "computation";
    case FragmentKind::kCommunication: return "communication";
    case FragmentKind::kIo: return "io";
  }
  return "?";
}

double WorkloadVector::norm() const {
  double s = 0.0;
  for (double d : dims) s += d * d;
  return std::sqrt(s);
}

double WorkloadVector::distance(const WorkloadVector& other) const {
  VAPRO_DCHECK(dims.size() == other.dims.size());
  double s = 0.0;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    double d = dims[i] - other.dims[i];
    s += d * d;
  }
  return std::sqrt(s);
}

std::size_t workload_dim_count(FragmentKind kind, std::size_t proxy_count) {
  return kind == FragmentKind::kComputation ? proxy_count : 3;
}

void write_workload_dims(FragmentKind kind, const pmu::CounterSample& counters,
                         const sim::CommArgs& args, sim::OpKind op,
                         const std::vector<pmu::Counter>& proxies,
                         double* out) {
  switch (kind) {
    case FragmentKind::kComputation:
      for (pmu::Counter c : proxies) *out++ = counters[c];
      break;
    case FragmentKind::kCommunication:
      // Arguments approximate communication workload (§3.3): size, peer,
      // and the operation.  Peer/op are scaled so that distinct values land
      // in distinct clusters regardless of the byte dimension.
      out[0] = args.bytes;
      out[1] = static_cast<double>(args.peer) * 1e3;
      out[2] = static_cast<double>(op) * 1e3;
      break;
    case FragmentKind::kIo:
      out[0] = args.bytes;
      out[1] = static_cast<double>(args.fd) * 1e3;
      out[2] = static_cast<double>(op) * 1e3;
      break;
  }
}

WorkloadVector make_workload_vector(
    const Fragment& f, const std::vector<pmu::Counter>& proxies) {
  WorkloadVector v;
  v.dims.resize(workload_dim_count(f.kind, proxies.size()));
  write_workload_dims(f.kind, f.counters, f.args, f.op, proxies,
                      v.dims.data());
  return v;
}

}  // namespace vapro::core
