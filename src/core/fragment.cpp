#include "src/core/fragment.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace vapro::core {

const char* fragment_kind_name(FragmentKind k) {
  switch (k) {
    case FragmentKind::kComputation: return "computation";
    case FragmentKind::kCommunication: return "communication";
    case FragmentKind::kIo: return "io";
  }
  return "?";
}

double WorkloadVector::norm() const {
  double s = 0.0;
  for (double d : dims) s += d * d;
  return std::sqrt(s);
}

double WorkloadVector::distance(const WorkloadVector& other) const {
  VAPRO_DCHECK(dims.size() == other.dims.size());
  double s = 0.0;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    double d = dims[i] - other.dims[i];
    s += d * d;
  }
  return std::sqrt(s);
}

WorkloadVector make_workload_vector(
    const Fragment& f, const std::vector<pmu::Counter>& proxies) {
  WorkloadVector v;
  switch (f.kind) {
    case FragmentKind::kComputation:
      v.dims.reserve(proxies.size());
      for (pmu::Counter c : proxies) v.dims.push_back(f.counters[c]);
      break;
    case FragmentKind::kCommunication:
      // Arguments approximate communication workload (§3.3): size, peer,
      // and the operation.  Peer/op are scaled so that distinct values land
      // in distinct clusters regardless of the byte dimension.
      v.dims = {f.args.bytes, static_cast<double>(f.args.peer) * 1e3,
                static_cast<double>(f.op) * 1e3};
      break;
    case FragmentKind::kIo:
      v.dims = {f.args.bytes, static_cast<double>(f.args.fd) * 1e3,
                static_cast<double>(f.op) * 1e3};
      break;
  }
  return v;
}

}  // namespace vapro::core
