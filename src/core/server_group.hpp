// Multi-server data collection (paper §5: "Vapro supports concurrent data
// collection with multiple servers to improve throughput.  By equally
// assigning parallel processes to different servers, servers can achieve
// load balance.  Further optimizations are feasible with ... MRNet, which
// organizes servers into a tree-like structure.")
//
// A ServerGroup shards ranks across N leaf AnalysisServers (rank % N) and
// aggregates their outputs at the root: merged heat maps, summed coverage,
// concatenated rare findings, and the union of per-shard diagnosis
// culprits.  Each leaf processes its shard on its own thread per window.
//
// Trade-off vs a single server (tested in test_server_group.cpp): leaf
// clustering only compares ranks within a shard, so cross-shard twins are
// not merged — harmless for SPMD programs where every shard holds many
// ranks, which is exactly the load-balanced assignment the paper uses.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/server.hpp"

namespace vapro::core {

class ServerGroup {
 public:
  // `servers` leaf servers for `ranks` ranks; options are shared.  Leaves
  // are constructed with live_detection=false — the group publishes the
  // merged detection gauges, journal events, and /v1 routes itself, so the
  // shards don't each overwrite them with partial views.
  ServerGroup(int ranks, int servers, ServerOptions opts);
  ~ServerGroup();

  // Splits the batch by rank shard and processes all shards concurrently.
  // With pipeline_depth > 1 the shards are handed to the leaves' analysis
  // workers and this returns before they finish; sync() (or any leaf
  // accessor, which syncs implicitly) waits for them.
  void process_window(FragmentBatch batch);

  // Blocks until every leaf has analyzed all its admitted shards.
  void sync() const;

  int servers() const { return static_cast<int>(leaves_.size()); }
  const AnalysisServer& leaf(int i) const { return *leaves_[static_cast<std::size_t>(i)]; }

  // --- aggregated (root) views ---
  // Merged heat map for one category, built by re-depositing leaf cells.
  Heatmap merged_map(FragmentKind kind) const;
  std::vector<VarianceRegion> locate(FragmentKind kind) const;
  CoverageAccumulator merged_coverage() const;
  std::vector<RareFinding> merged_rare_findings() const;
  // Counter demand: the union over leaves (they advance independently).
  std::vector<pmu::Counter> counters_needed() const;
  // Culprits reported by any leaf's finished diagnosis.
  std::vector<FactorId> merged_culprits() const;

  std::size_t fragments_processed() const;
  std::size_t windows_processed() const { return windows_; }
  // Windows whose merged root publish was lost to an injected
  // "group.merge" fault (leaves and the final snapshot are unaffected).
  std::size_t merge_faults() const { return merge_faults_; }

  // Final full-precision merged variance_region snapshot into the journal
  // (see AnalysisServer::journal_detection_snapshot).
  void journal_detection_snapshot() const;

  // Merged-view JSON served at /v1/heatmap and /v1/variance.
  std::string render_heatmap_json() const;
  std::string render_variance_json() const;

  // Self-diagnosis JSON served at /v1/latency and /v1/critical_path: one
  // per-leaf section each (stage timing is per shard server; summing
  // overlapping shards would fabricate a serial critical path).
  std::string render_latency_json() const;
  std::string render_critical_path_json() const;

 private:
  void attach_live_routes();
  void publish_detection(std::int64_t window, double virtual_time,
                         std::uint64_t fragments);

  int ranks_;
  double variance_threshold_;
  double bin_seconds_;
  obs::ObsContext* obs_ = nullptr;  // shared with the leaves (borrowed)
  bool live_detection_ = false;     // publish merged root views?
  bool pipelined_ = false;          // leaves run pipeline_depth > 1?
  std::vector<std::unique_ptr<AnalysisServer>> leaves_;
  // Serializes process_window (including its leaf threads) against /v1
  // scrapes and journal_detection_snapshot.
  mutable std::mutex live_mu_;
  std::vector<std::string> live_routes_;
  std::size_t windows_ = 0;
  std::size_t merge_faults_ = 0;
  double last_virtual_time_ = 0.0;
  mutable RegionJournal region_journal_;
};

}  // namespace vapro::core
