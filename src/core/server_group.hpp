// Multi-server data collection (paper §5: "Vapro supports concurrent data
// collection with multiple servers to improve throughput.  By equally
// assigning parallel processes to different servers, servers can achieve
// load balance.  Further optimizations are feasible with ... MRNet, which
// organizes servers into a tree-like structure.")
//
// A ServerGroup shards ranks across N leaf AnalysisServers (rank % N) and
// aggregates their outputs at the root: merged heat maps, summed coverage,
// concatenated rare findings, and the union of per-shard diagnosis
// culprits.  Each leaf processes its shard on its own thread per window.
//
// Trade-off vs a single server (tested in test_server_group.cpp): leaf
// clustering only compares ranks within a shard, so cross-shard twins are
// not merged — harmless for SPMD programs where every shard holds many
// ranks, which is exactly the load-balanced assignment the paper uses.
#pragma once

#include <memory>
#include <vector>

#include "src/core/server.hpp"

namespace vapro::core {

class ServerGroup {
 public:
  // `servers` leaf servers for `ranks` ranks; options are shared.
  ServerGroup(int ranks, int servers, ServerOptions opts);

  // Splits the batch by rank shard and processes all shards concurrently.
  void process_window(FragmentBatch batch);

  int servers() const { return static_cast<int>(leaves_.size()); }
  const AnalysisServer& leaf(int i) const { return *leaves_[static_cast<std::size_t>(i)]; }

  // --- aggregated (root) views ---
  // Merged heat map for one category, built by re-depositing leaf cells.
  Heatmap merged_map(FragmentKind kind) const;
  std::vector<VarianceRegion> locate(FragmentKind kind) const;
  CoverageAccumulator merged_coverage() const;
  std::vector<RareFinding> merged_rare_findings() const;
  // Counter demand: the union over leaves (they advance independently).
  std::vector<pmu::Counter> counters_needed() const;
  // Culprits reported by any leaf's finished diagnosis.
  std::vector<FactorId> merged_culprits() const;

  std::size_t fragments_processed() const;

 private:
  int ranks_;
  double variance_threshold_;
  double bin_seconds_;
  obs::ObsContext* obs_ = nullptr;  // shared with the leaves (borrowed)
  std::vector<std::unique_ptr<AnalysisServer>> leaves_;
};

}  // namespace vapro::core
