// Report generation (paper Fig 2 step 7, "Visualization").
//
// Renders a complete session result as text: per-category heat maps,
// impact-ordered variance regions with quantified loss, rare-path findings
// (Algorithm 1 line 8), the progressive diagnosis, and collection
// statistics.  `write_csv_bundle` dumps the machine-readable artifacts for
// external plotting.
#pragma once

#include <string>

#include "src/core/vapro.hpp"

namespace vapro::core {

struct ReportOptions {
  bool include_heatmaps = true;
  bool include_rare_findings = true;
  bool include_diagnosis = true;
  int heatmap_rows = 24;
  int heatmap_cols = 80;
  // ANSI color output for terminals (red = slow).
  bool ansi_color = false;
};

// The full human-readable report for a finished session.
std::string render_report(const VaproSession& session,
                          const ReportOptions& opts = {});

// Writes heat maps as CSV files under `directory` (created by the caller):
// computation.csv, communication.csv, io.csv.  Returns the file count.
int write_csv_bundle(const VaproSession& session,
                     const std::string& directory);

// ANSI rendering of one heat map ('█' blocks colored by performance).
std::string render_ansi(const Heatmap& map, int max_rows = 24,
                        int max_cols = 80);

// The impact-ordered variance-region table of one category (top `limit`
// regions) — shared by render_report and the journal replay path so both
// print byte-identical tables from the same region values.
std::string render_region_table(const std::vector<VarianceRegion>& regions,
                                double bin_seconds, std::size_t limit = 10);

// The rare-execution-path table (Algorithm 1 line 8), top `limit` rows.
std::string render_rare_table(const std::vector<RareFinding>& findings,
                              std::size_t limit = 10);

}  // namespace vapro::core
