#include <algorithm>
#include <sstream>

#include "src/core/vapro.hpp"
#include "src/util/clock.hpp"
#include "src/util/log.hpp"
#include "src/util/table.hpp"

namespace vapro::core {

ServerOptions server_options_from(const VaproOptions& opts,
                                  const pmu::MachineParams& machine,
                                  ClusterBaseline* shared_baseline) {
  ServerOptions sopts;
  sopts.stg_mode = opts.stg_mode;
  sopts.cluster = opts.cluster;
  sopts.diagnosis = opts.diagnosis;
  sopts.machine = machine;
  sopts.variance_threshold = opts.variance_threshold;
  sopts.bin_seconds = opts.bin_seconds;
  sopts.window_overlap_seconds = opts.window_overlap_seconds;
  sopts.analysis_threads = opts.analysis_threads;
  sopts.pipeline_depth = opts.pipeline_depth;
  sopts.cluster_seed_cache = opts.cluster_seed_cache;
  sopts.run_diagnosis = opts.run_diagnosis;
  sopts.record_eval_pairs = opts.record_eval_pairs;
  sopts.window_observer = opts.window_observer;
  sopts.shared_baseline = shared_baseline;
  sopts.obs = opts.obs;
  sopts.clock = opts.clock;
  return sopts;
}

VaproSession::VaproSession(sim::Simulator& simulator, VaproOptions opts,
                           ClusterBaseline* shared_baseline)
    : simulator_(simulator), opts_(opts) {
  ClientOptions copts;
  copts.stg_mode = opts.stg_mode;
  copts.pmu_budget = opts.pmu_budget;
  copts.pmu_jitter = opts.pmu_jitter;
  copts.sampling = opts.sampling;
  copts.sampling_warmup = opts.sampling_warmup;
  copts.seed = opts.seed;
  copts.obs = opts.obs;
  client_ =
      std::make_unique<VaproClient>(simulator.config().ranks, copts);

  if (opts.batch_transport) {
    // Transport-attached: batches travel through the hook (typically the
    // src/net ingest plane) and land on the caller-owned backend.
    analysis_ = opts.external_server;
  } else {
    server_ = std::make_unique<AnalysisServer>(
        simulator.config().ranks,
        server_options_from(opts, simulator.config().machine,
                            shared_baseline));
    analysis_ = server_.get();
  }

  // Stage-1 counters must be live from the start.  User-specified proxy
  // metrics (§3.4: "users are able to specify other PMU metrics") ride
  // along with whatever the diagnosis stage needs — they must fit the
  // programmable budget together.
  auto with_proxies = [this](std::vector<pmu::Counter> counters) {
    for (pmu::Counter proxy : opts_.cluster.proxies) {
      if (pmu::is_free_counter(proxy)) continue;
      if (std::find(counters.begin(), counters.end(), proxy) == counters.end())
        counters.push_back(proxy);
    }
    return counters;
  };
  auto reprogram = [this, with_proxies] {
    auto wanted = with_proxies(analysis_->counters_needed());
    if (client_->configure_counters(wanted)) return;
    if (opts_.allow_multiplexing) {
      client_->configure_counters_multiplexed(wanted);
      return;
    }
    // Once per window the over-budget set is retried; rate-limit the
    // complaint so long runs don't get one line per window.
    VAPRO_LOG_TAG_EVERY_N(::vapro::util::LogLevel::kWarn, "session", 32)
        << "proxy metrics + stage counters exceed the PMU budget; "
           "raise pmu_budget or set allow_multiplexing";
    client_->configure_counters(analysis_->counters_needed());
  };
  reprogram();

  simulator_.set_interceptor(client_.get());
  periodic_id_ =
      simulator_.add_periodic(opts.window_seconds, [this, reprogram](double) {
        // The drain is timed separately: it becomes the "drain" stage of
        // this window's PipelineStats snapshot.
        util::Clock* clock = opts_.clock ? opts_.clock : util::real_clock();
        const double t0 = clock->now_seconds();
        FragmentBatch batch = client_->drain();
        const double drain_seconds =
            opts_.obs ? clock->now_seconds() - t0 : 0.0;
        if (opts_.batch_transport) {
          opts_.batch_transport(std::move(batch), drain_seconds);
        } else {
          server_->process_window(std::move(batch), drain_seconds);
        }
        // Progressive diagnosis may have moved to a finer stage; reprogram
        // the clients' PMU sets for the next window.  With a pipelined
        // server the window may still be in flight — sync first so the
        // PMU feedback loop sees exactly the serial run's state.  Without
        // diagnosis the counter demand is constant, so the pipeline keeps
        // its overlap.
        if (opts_.run_diagnosis) {
          if (opts_.transport_sync) {
            opts_.transport_sync();
          } else if (server_) {
            server_->sync();
          }
        }
        reprogram();
      });
}

VaproSession::~VaproSession() {
  simulator_.set_interceptor(nullptr);
  simulator_.remove_periodic(periodic_id_);
}

std::string VaproSession::detection_summary() const {
  std::ostringstream oss;
  static constexpr FragmentKind kKinds[] = {FragmentKind::kComputation,
                                            FragmentKind::kCommunication,
                                            FragmentKind::kIo};
  bool any = false;
  for (FragmentKind kind : kKinds) {
    auto regions = locate(kind);
    if (regions.empty()) continue;
    any = true;
    oss << fragment_kind_name(kind) << " variance regions (impact-ordered):\n";
    const double bin = opts_.bin_seconds;
    std::size_t shown = 0;
    for (const VarianceRegion& r : regions) {
      if (++shown > 8) {
        oss << "  ... " << regions.size() - 8 << " more\n";
        break;
      }
      oss << "  ranks " << r.rank_lo << "-" << r.rank_hi << ", t=["
          << util::fmt(r.time_lo(bin), 2) << "s, " << util::fmt(r.time_hi(bin), 2)
          << "s): mean normalized performance " << util::fmt(r.mean_perf, 3)
          << " (" << util::fmt((1.0 - r.mean_perf) * 100.0, 1)
          << "% loss), impact " << util::fmt(r.impact_seconds, 3)
          << " fragment-seconds\n";
    }
  }
  if (!any) oss << "no variance regions detected\n";
  return oss.str();
}

}  // namespace vapro::core
