#include "src/core/server_group.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "src/obs/exposition.hpp"
#include "src/testing/fault.hpp"
#include "src/util/check.hpp"

namespace vapro::core {

namespace {
constexpr FragmentKind kAllKinds[] = {FragmentKind::kComputation,
                                      FragmentKind::kCommunication,
                                      FragmentKind::kIo};
}  // namespace

ServerGroup::ServerGroup(int ranks, int servers, ServerOptions opts)
    : ranks_(ranks),
      variance_threshold_(opts.variance_threshold),
      bin_seconds_(opts.bin_seconds),
      obs_(opts.obs),
      live_detection_(opts.live_detection),
      pipelined_(opts.pipeline_depth > 1) {
  VAPRO_CHECK(servers >= 1 && ranks >= 1);
  // Each leaf runs its own analysis; intra-leaf threading stays at 1 since
  // the leaves themselves run concurrently.  pipeline_depth passes through:
  // pipelined leaves each own an analysis worker, and process_window below
  // hands shards straight to those workers instead of spawning per-window
  // threads.
  opts.analysis_threads = 1;
  // The root owns the live detection surfaces (class comment).
  opts.live_detection = false;
  leaves_.reserve(static_cast<std::size_t>(servers));
  for (int s = 0; s < servers; ++s)
    leaves_.push_back(std::make_unique<AnalysisServer>(ranks, opts));
  if (obs_ && live_detection_) attach_live_routes();
}

ServerGroup::~ServerGroup() {
  if (!obs_ || live_routes_.empty()) return;
  if (obs::ExpositionServer* http = obs_->exposition())
    for (const std::string& path : live_routes_) http->remove_route(path);
}

void ServerGroup::attach_live_routes() {
  obs::ExpositionServer* http = obs_->exposition();
  if (!http) return;
  http->add_route("/v1/heatmap", [this] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = render_heatmap_json();
    return r;
  });
  http->add_route("/v1/variance", [this] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = render_variance_json();
    return r;
  });
  http->add_route("/v1/latency", [this] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = render_latency_json();
    return r;
  });
  http->add_route("/v1/critical_path", [this] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = render_critical_path_json();
    return r;
  });
  live_routes_ = {"/v1/heatmap", "/v1/variance", "/v1/latency",
                  "/v1/critical_path"};
}

void ServerGroup::process_window(FragmentBatch batch) {
  obs::TraceRecorder* trace = obs_ ? obs_->trace() : nullptr;
  obs::ToolTimeScope tool_time(obs_ ? &obs_->overhead() : nullptr);
  // Held across the leaf threads so /v1 scrapes see whole windows.
  std::lock_guard<std::mutex> live_lock(live_mu_);
  const std::uint64_t t0 = trace ? trace->now_ns() : 0;
  const std::uint64_t total_fragments = batch.fragments.size();

  const int n = servers();
  std::vector<FragmentBatch> shards(static_cast<std::size_t>(n));
  // State announcements go to every leaf (cheap, idempotent).
  for (auto& shard : shards) shard.new_states = batch.new_states;
  // Demux by rank with two contiguous column scans (window end, then
  // shard routing); each shard's columns receive the fragment via a view
  // copy — the shard batch then moves into its leaf's pipeline by arena
  // swap.
  double window_end = 0.0;
  const double* ends = batch.fragments.end_data();
  for (std::size_t i = 0; i < total_fragments; ++i)
    window_end = std::max(window_end, ends[i]);
  const sim::RankId* ranks = batch.fragments.rank_data();
  for (std::size_t i = 0; i < total_fragments; ++i)
    shards[static_cast<std::size_t>(ranks[i] % n)].fragments.push_back(
        batch.fragments[i]);
  if (pipelined_) {
    // Pipelined leaves already own an analysis worker each: hand every
    // shard to its leaf's pipeline (the hand-off only blocks for
    // backpressure) and let the workers overlap with the caller's next
    // drain.  No per-window thread spawn.
    for (int s = 0; s < n; ++s)
      leaves_[static_cast<std::size_t>(s)]->process_window(
          std::move(shards[static_cast<std::size_t>(s)]));
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      pool.emplace_back([this, s, &shards, trace] {
        // Each leaf's own "analysis.window" span lands on this worker's
        // trace track; the extra span names the shard it belongs to.
        obs::TraceSpan leaf_span(
            trace, "group.leaf", "server_group",
            {obs::TraceRecorder::arg("shard", static_cast<std::uint64_t>(s))});
        leaves_[static_cast<std::size_t>(s)]->process_window(
            std::move(shards[static_cast<std::size_t>(s)]));
      });
    }
    for (auto& t : pool) t.join();
  }

  last_virtual_time_ = std::max(last_virtual_time_, window_end);
  if (obs_) {
    obs_->metrics().counter("vapro.group.windows_total")->inc();
    obs_->metrics()
        .counter("vapro.group.fragments_total")
        ->inc(total_fragments);
    if (live_detection_) {
      if (VAPRO_FAULT("group.merge") == testing::FaultAction::kFail)
        // Merged publish lost for this window; leaves are unaffected and
        // the final snapshot still recovers the merged regions.
        ++merge_faults_;
      else
        publish_detection(static_cast<std::int64_t>(windows_),
                          last_virtual_time_, total_fragments);
    }
    if (trace)
      trace->complete(
          "group.window", "server_group", t0,
          {obs::TraceRecorder::arg("leaves", static_cast<std::uint64_t>(n)),
           obs::TraceRecorder::arg("fragments", total_fragments)});
  }
  ++windows_;
}

void ServerGroup::sync() const {
  for (const auto& leaf : leaves_) leaf->sync();
}

void ServerGroup::publish_detection(std::int64_t window, double virtual_time,
                                    std::uint64_t fragments) {
  Heatmap comp = merged_map(FragmentKind::kComputation);
  Heatmap comm = merged_map(FragmentKind::kCommunication);
  Heatmap io = merged_map(FragmentKind::kIo);
  const Heatmap* maps[3] = {&comp, &comm, &io};
  std::vector<VarianceRegion> regions[3];
  for (int k = 0; k < 3; ++k)
    regions[k] = find_variance_regions(*maps[k], variance_threshold_);
  const CoverageAccumulator cov = merged_coverage();
  const DetectionHealth health = detection_health(maps, regions, cov);
  publish_health_gauges(obs_->metrics(), health);

  obs::Journal* journal = obs_->journal();
  if (!journal) return;
  for (FragmentKind kind : kAllKinds)
    region_journal_.emit(*journal, kind, regions[static_cast<int>(kind)],
                         window, virtual_time, bin_seconds_,
                         /*final_snapshot=*/false);
  journal_window_event(
      *journal, window, virtual_time, health,
      {obs::JournalField::num("fragments", fragments),
       obs::JournalField::num("leaves",
                              static_cast<std::uint64_t>(leaves_.size()))});
}

void ServerGroup::journal_detection_snapshot() const {
  obs::Journal* journal = obs_ ? obs_->journal() : nullptr;
  if (!journal) return;
  std::lock_guard<std::mutex> lock(live_mu_);
  const std::int64_t window =
      windows_ ? static_cast<std::int64_t>(windows_) - 1 : -1;
  for (FragmentKind kind : kAllKinds)
    region_journal_.emit(*journal, kind, locate(kind), window,
                         last_virtual_time_, bin_seconds_,
                         /*final_snapshot=*/true);
  journal->flush();
}

std::string ServerGroup::render_heatmap_json() const {
  std::lock_guard<std::mutex> lock(live_mu_);
  Heatmap comp = merged_map(FragmentKind::kComputation);
  Heatmap comm = merged_map(FragmentKind::kCommunication);
  Heatmap io = merged_map(FragmentKind::kIo);
  const Heatmap* maps[3] = {&comp, &comm, &io};
  return core::render_heatmap_json(maps, ranks_, bin_seconds_);
}

std::string ServerGroup::render_variance_json() const {
  std::lock_guard<std::mutex> lock(live_mu_);
  std::vector<VarianceRegion> regions[3];
  for (FragmentKind kind : kAllKinds)
    regions[static_cast<int>(kind)] = locate(kind);
  return core::render_variance_json(regions, windows_, last_virtual_time_,
                                    bin_seconds_, variance_threshold_);
}

std::string ServerGroup::render_latency_json() const {
  // Leaf trackers carry their own locks; no group lock needed, and a
  // mid-window scrape simply sees each shard's progress so far.
  std::ostringstream oss;
  oss << "{\"servers\":[";
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    if (i) oss << ',';
    oss << "{\"server\":" << i
        << ",\"latency\":" << leaves_[i]->render_latency_json() << '}';
  }
  oss << "]}";
  return oss.str();
}

std::string ServerGroup::render_critical_path_json() const {
  std::ostringstream oss;
  oss << "{\"servers\":[";
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    if (i) oss << ',';
    oss << "{\"server\":" << i << ",\"critical_path\":"
        << leaves_[i]->render_critical_path_json() << '}';
  }
  oss << "]}";
  return oss.str();
}

Heatmap ServerGroup::merged_map(FragmentKind kind) const {
  Heatmap merged(ranks_, bin_seconds_);
  for (const auto& leaf : leaves_) {
    switch (kind) {
      case FragmentKind::kComputation:
        merged.merge(leaf->computation_map());
        break;
      case FragmentKind::kCommunication:
        merged.merge(leaf->communication_map());
        break;
      case FragmentKind::kIo:
        merged.merge(leaf->io_map());
        break;
    }
  }
  return merged;
}

std::vector<VarianceRegion> ServerGroup::locate(FragmentKind kind) const {
  return find_variance_regions(merged_map(kind), variance_threshold_);
}

CoverageAccumulator ServerGroup::merged_coverage() const {
  CoverageAccumulator out;
  for (const auto& leaf : leaves_) {
    const CoverageAccumulator& c = leaf->coverage();
    for (int k = 0; k < 3; ++k) {
      out.covered[k] += c.covered[k];
      out.observed[k] += c.observed[k];
    }
  }
  return out;
}

std::vector<RareFinding> ServerGroup::merged_rare_findings() const {
  std::vector<RareFinding> out;
  for (const auto& leaf : leaves_) {
    const auto& findings = leaf->rare_findings();
    out.insert(out.end(), findings.begin(), findings.end());
  }
  std::sort(out.begin(), out.end(),
            [](const RareFinding& a, const RareFinding& b) {
              return a.total_seconds > b.total_seconds;
            });
  return out;
}

std::vector<pmu::Counter> ServerGroup::counters_needed() const {
  std::vector<pmu::Counter> out;
  for (const auto& leaf : leaves_) {
    for (pmu::Counter c : leaf->counters_needed()) {
      if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
    }
  }
  return out;
}

std::vector<FactorId> ServerGroup::merged_culprits() const {
  std::vector<FactorId> out;
  for (const auto& leaf : leaves_) {
    if (!leaf->diagnosis_finished()) continue;
    for (FactorId f : leaf->diagnosis().culprits) {
      if (std::find(out.begin(), out.end(), f) == out.end()) out.push_back(f);
    }
  }
  return out;
}

std::size_t ServerGroup::fragments_processed() const {
  std::size_t n = 0;
  for (const auto& leaf : leaves_) n += leaf->fragments_processed();
  return n;
}

}  // namespace vapro::core
