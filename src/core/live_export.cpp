#include "src/core/live_export.hpp"

#include <algorithm>
#include <sstream>

namespace vapro::core {

namespace {

// %.17g number text — the journal's formatter, so live JSON views and
// journaled events agree exactly.
std::string num_text(double v) { return obs::JournalField::num("x", v).json; }

}  // namespace

DetectionHealth detection_health(const Heatmap* const maps[3],
                                 const std::vector<VarianceRegion> regions[3],
                                 const CoverageAccumulator& coverage) {
  DetectionHealth h;
  for (int k = 0; k < 3; ++k) {
    const Heatmap& map = *maps[k];
    for (int rank = 0; rank < map.ranks(); ++rank)
      for (int bin = 0; bin < map.bins(); ++bin)
        if (map.has_data(rank, bin))
          h.worst_cell = std::min(h.worst_cell, map.cell(rank, bin));
  }
  double worst_region_perf = 1.0;
  for (int k = 0; k < 3; ++k) {
    h.region_count += regions[k].size();
    for (const VarianceRegion& r : regions[k])
      if (r.mean_perf > 0.0)
        worst_region_perf = std::min(worst_region_perf, r.mean_perf);
  }
  h.variance_ratio = worst_region_perf > 0.0 ? 1.0 / worst_region_perf : 1.0;
  const double observed = coverage.observed_total();
  h.coverage = observed > 0.0 ? coverage.covered_total() / observed : 0.0;
  return h;
}

void publish_health_gauges(obs::MetricsRegistry& metrics,
                           const DetectionHealth& health) {
  metrics.gauge("vapro.detect.worst_cell")->set(health.worst_cell);
  metrics.gauge("vapro.detect.region_count")
      ->set(static_cast<double>(health.region_count));
  metrics.gauge("vapro.detect.coverage")->set(health.coverage);
  metrics.gauge("vapro.detect.variance_ratio")->set(health.variance_ratio);
}

void journal_window_event(obs::Journal& journal, std::int64_t window,
                          double virtual_time, const DetectionHealth& health,
                          std::vector<obs::JournalField> extra) {
  std::vector<obs::JournalField> fields = std::move(extra);
  fields.push_back(obs::JournalField::num("worst_cell", health.worst_cell));
  fields.push_back(obs::JournalField::num(
      "region_count", static_cast<std::uint64_t>(health.region_count)));
  fields.push_back(obs::JournalField::num("coverage", health.coverage));
  fields.push_back(
      obs::JournalField::num("variance_ratio", health.variance_ratio));
  journal.emit("window", window, virtual_time, std::move(fields));
}

void RegionJournal::emit(obs::Journal& journal, FragmentKind kind,
                         const std::vector<VarianceRegion>& regions,
                         std::int64_t window, double virtual_time,
                         double bin_seconds, bool final_snapshot) {
  const int k = static_cast<int>(kind);
  std::vector<Box> boxes;
  boxes.reserve(regions.size());
  for (const VarianceRegion& r : regions)
    boxes.push_back({r.rank_lo, r.rank_hi, r.bin_lo, r.bin_hi});
  // Per-window calls dedup on the bounding-box set; a final snapshot
  // always re-emits at full precision so replay needs no event history.
  if (!final_snapshot && boxes == boxes_[k]) return;
  if (final_snapshot && regions.empty() && revision_[k] == 0)
    return;  // never saw a region in this category — nothing to record
  boxes_[k] = std::move(boxes);
  const std::uint64_t revision = ++revision_[k];
  if (regions.empty()) {
    journal.emit("variance_clear", window, virtual_time,
                 {obs::JournalField::str("kind", fragment_kind_name(kind)),
                  obs::JournalField::num("revision", revision),
                  obs::JournalField::boolean("final", final_snapshot)});
    return;
  }
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const VarianceRegion& r = regions[i];
    journal.emit(
        "variance_region", window, virtual_time,
        {obs::JournalField::str("kind", fragment_kind_name(kind)),
         obs::JournalField::num("revision", revision),
         obs::JournalField::num("index", static_cast<std::uint64_t>(i)),
         obs::JournalField::num("count",
                                static_cast<std::uint64_t>(regions.size())),
         obs::JournalField::num("rank_lo", static_cast<std::int64_t>(r.rank_lo)),
         obs::JournalField::num("rank_hi", static_cast<std::int64_t>(r.rank_hi)),
         obs::JournalField::num("bin_lo", static_cast<std::int64_t>(r.bin_lo)),
         obs::JournalField::num("bin_hi", static_cast<std::int64_t>(r.bin_hi)),
         obs::JournalField::num("cells", static_cast<std::uint64_t>(r.cells)),
         obs::JournalField::num("mean_perf", r.mean_perf),
         obs::JournalField::num("impact_seconds", r.impact_seconds),
         obs::JournalField::num("bin_seconds", bin_seconds),
         obs::JournalField::boolean("final", final_snapshot)});
  }
}

std::string render_heatmap_json(const Heatmap* const maps[3], int ranks,
                                double bin_seconds) {
  std::ostringstream oss;
  oss << "{\"ranks\":" << ranks << ",\"bin_seconds\":" << num_text(bin_seconds)
      << ",\"maps\":{";
  for (int k = 0; k < 3; ++k) {
    if (k) oss << ',';
    const Heatmap& map = *maps[k];
    oss << '"' << fragment_kind_name(static_cast<FragmentKind>(k))
        << "\":{\"bins\":" << map.bins() << ",\"cells\":[";
    bool first = true;
    for (int rank = 0; rank < map.ranks(); ++rank)
      for (int bin = 0; bin < map.bins(); ++bin) {
        if (!map.has_data(rank, bin)) continue;
        if (!first) oss << ',';
        first = false;
        // [rank, bin, mean normalized perf, fragment-seconds of weight]
        oss << '[' << rank << ',' << bin << ','
            << num_text(map.cell(rank, bin)) << ','
            << num_text(map.weight(rank, bin)) << ']';
      }
    oss << "]}";
  }
  oss << "}}";
  return oss.str();
}

std::string render_variance_json(const std::vector<VarianceRegion> regions[3],
                                 std::size_t windows, double virtual_time,
                                 double bin_seconds, double threshold) {
  std::ostringstream oss;
  oss << "{\"windows\":" << windows
      << ",\"virtual_time\":" << num_text(virtual_time)
      << ",\"bin_seconds\":" << num_text(bin_seconds)
      << ",\"threshold\":" << num_text(threshold) << ",\"regions\":{";
  for (int k = 0; k < 3; ++k) {
    if (k) oss << ',';
    oss << '"' << fragment_kind_name(static_cast<FragmentKind>(k)) << "\":[";
    bool first = true;
    for (const VarianceRegion& r : regions[k]) {
      if (!first) oss << ',';
      first = false;
      oss << "{\"rank_lo\":" << r.rank_lo << ",\"rank_hi\":" << r.rank_hi
          << ",\"t_lo\":" << num_text(r.time_lo(bin_seconds))
          << ",\"t_hi\":" << num_text(r.time_hi(bin_seconds))
          << ",\"mean_perf\":" << num_text(r.mean_perf)
          << ",\"impact_seconds\":" << num_text(r.impact_seconds)
          << ",\"cells\":" << r.cells << '}';
    }
    oss << ']';
  }
  oss << "}}";
  return oss.str();
}

}  // namespace vapro::core
