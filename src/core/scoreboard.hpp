// Glue between the sim's injection ground truth, one run's Vapro
// conclusions, and the obs-layer quality scoreboard (src/obs/quality.hpp).
//
// The obs library sits below core in the link order, so the scoreboard
// itself speaks only strings and plain window/rank ranges; this adapter is
// where sim::GroundTruthEvent and core types (VarianceRegion, FactorId)
// get translated:
//
//   * journal_ground_truth — one "ground_truth" event per injection
//     (journal schema v2), so a journal alone suffices to re-score a run;
//   * ground_truth_from_journal — the inverse, for replay and tests;
//   * expected_factor_classes — which diagnosis conclusions count as
//     correct for each noise kind (CPU contention should surface as
//     involuntary context switches, a slow DIMM as DRAM bound, ...);
//   * score_run_quality — overlap-match a run's variance regions against
//     the injections and check the diagnosed culprits.
#pragma once

#include <string>
#include <vector>

#include "src/core/breakdown.hpp"
#include "src/core/heatmap.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/quality.hpp"
#include "src/sim/noise.hpp"

namespace vapro::core {

// Factor classes that count as a correct diagnosis for `kind`.  Diagnosis
// culprits score under factor_name() ("DRAM bound", ...); IO and network
// interference never reach the computation breakdown tree, so they score
// under the category of the heat map that located them ("category:io",
// "category:communication").
std::vector<std::string> expected_factor_classes(sim::NoiseKind kind);

// Emits one "ground_truth" event per injection: kind tag, clamped window,
// inclusive rank range, magnitude.
void journal_ground_truth(obs::Journal& journal,
                          const std::vector<sim::GroundTruthEvent>& truths,
                          double virtual_time);

// Recovers injections from parsed journal events ("ground_truth" type);
// events of any other type are ignored, so a whole-run journal works.
std::vector<sim::GroundTruthEvent> ground_truth_from_journal(
    const std::vector<obs::JournalEvent>& events);

// One run's conclusions, in scoreboard terms.
struct RunConclusions {
  double bin_seconds = 0.25;  // VaproOptions::bin_seconds of the run
  std::vector<VarianceRegion> computation;
  std::vector<VarianceRegion> communication;
  std::vector<VarianceRegion> io;
  std::vector<FactorId> culprits;  // DiagnosisReport::culprits
};

// Scores `run` against `truths`: regions (all three categories) are the
// detections; the observed top factors are the culprits' names plus a
// "category:<name>" tag for each category whose regions matched at least
// one injection.
obs::QualityScore score_run_quality(
    const std::vector<sim::GroundTruthEvent>& truths,
    const RunConclusions& run, const obs::QualityMatchOptions& opts = {});

}  // namespace vapro::core
