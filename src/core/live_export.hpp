// Live detection surfaces shared by AnalysisServer and ServerGroup:
//
//  - DetectionHealth: the per-window health summary (worst normalized
//    cell, region count, fixed-workload coverage, worst-region slowdown
//    ratio) behind the vapro.detect.* gauges, the "window" journal event,
//    and the alert engine's window metrics;
//  - RegionJournal: revision-deduped variance_region/variance_clear
//    journal emission, so a region set is re-journaled only when its
//    bounding boxes change between windows;
//  - JSON renderers for the /v1/heatmap and /v1/variance HTTP routes.
//
// A single server publishes from its own maps; a ServerGroup publishes the
// merged root view (its leaves are constructed with live_detection=false).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/detection.hpp"
#include "src/core/heatmap.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/metrics.hpp"

namespace vapro::core {

// All 3-arrays below are indexed by FragmentKind.

struct DetectionHealth {
  double worst_cell = 1.0;      // lowest normalized perf of any data cell
  std::size_t region_count = 0; // variance regions across all categories
  double coverage = 0.0;        // covered / observed fragment time
  double variance_ratio = 1.0;  // 1 / worst region mean_perf
};

DetectionHealth detection_health(const Heatmap* const maps[3],
                                 const std::vector<VarianceRegion> regions[3],
                                 const CoverageAccumulator& coverage);

// Sets the vapro.detect.* gauges from a health summary.
void publish_health_gauges(obs::MetricsRegistry& metrics,
                           const DetectionHealth& health);

// Emits the per-window "window" journal event: the health fields (whose
// keys double as alert-rule metric names — alerts.hpp) plus any
// caller-specific extras (fragment counts, diagnosis stage, ...).
void journal_window_event(obs::Journal& journal, std::int64_t window,
                          double virtual_time, const DetectionHealth& health,
                          std::vector<obs::JournalField> extra);

// Revision-deduped variance-region journal emission state; one instance
// per publishing server (single server or group root).
class RegionJournal {
 public:
  // Journals `kind`'s region list if its bounding-box set changed since
  // the last call (always for a final snapshot), bumping the category's
  // revision: one `variance_region` event per region, or one
  // `variance_clear` when a previously journaled set became empty.
  void emit(obs::Journal& journal, FragmentKind kind,
            const std::vector<VarianceRegion>& regions, std::int64_t window,
            double virtual_time, double bin_seconds, bool final_snapshot);

 private:
  struct Box {
    int rank_lo, rank_hi, bin_lo, bin_hi;
    bool operator==(const Box&) const = default;
  };
  std::uint64_t revision_[3] = {0, 0, 0};
  std::vector<Box> boxes_[3];
};

// JSON bodies for the /v1 routes.  Region fields match report_json's
// ("rank_lo"/"rank_hi"/"t_lo"/"t_hi"/"mean_perf"/"impact_seconds"/"cells")
// so consumers parse one shape; numbers are %.17g like the journal.
std::string render_heatmap_json(const Heatmap* const maps[3], int ranks,
                                double bin_seconds);
std::string render_variance_json(const std::vector<VarianceRegion> regions[3],
                                 std::size_t windows, double virtual_time,
                                 double bin_seconds, double threshold);

}  // namespace vapro::core
