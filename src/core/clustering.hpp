// Fixed-workload identification by clustering (paper §3.4, Algorithm 1).
//
// Per STG edge/vertex, workload vectors are sorted by Euclidean norm; the
// unprocessed fragment with the smallest norm seeds a cluster that absorbs
// every fragment within a relative distance threshold (5% by default).
// Sorting by norm makes the sweep linear: members of a seed's cluster can
// only live in the norm window [‖seed‖, ‖seed‖·(1+threshold)], because
// |‖a‖−‖b‖| ≤ ‖a−b‖.
//
// Clusters with fewer than `min_cluster_size` members are flagged "rare"
// (Algorithm 1 line 8): they are excluded from variance normalization but
// reported so users can inspect non-repeated long executions.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/core/stg.hpp"
#include "src/obs/trace_export.hpp"
#include "src/pmu/counters.hpp"

namespace vapro::core {

struct ClusterOptions {
  // Relative distance threshold for cluster membership (paper: 5%).
  double threshold = 0.05;
  // Minimum members for a cluster to count as repeated fixed workload
  // (paper: 5).
  int min_cluster_size = 5;
  // Proxy metrics forming the computation workload vector (paper default:
  // TOT_INS; users may add e.g. MEM_REFS for precision at extra cost).
  std::vector<pmu::Counter> proxies = {pmu::Counter::kTotIns};
};

struct Cluster {
  // The edge/vertex this cluster belongs to.
  StateKey from = kStartState;
  StateKey to = kStartState;
  FragmentKind kind = FragmentKind::kComputation;
  std::vector<std::size_t> members;  // fragment indices into the Stg
  double seed_norm = 0.0;            // least norm in the cluster
  bool rare = false;
};

struct ClusteringResult {
  std::vector<Cluster> clusters;
  // fragment index → cluster index; every clustered fragment appears.
  std::unordered_map<std::size_t, std::size_t> assignment;

  std::size_t rare_count() const;
};

// Clusters one fragment set (all fragments must share an edge or vertex).
// `indices` index into stg.fragments().
std::vector<Cluster> cluster_fragments(const Stg& stg,
                                       const std::vector<std::size_t>& indices,
                                       const ClusterOptions& opts);

// Runs Algorithm 1 over every edge and vertex of the STG.
ClusteringResult cluster_stg(const Stg& stg, const ClusterOptions& opts);

// Same result, but edges/vertices are clustered by `threads` worker
// threads — the multi-threaded analysis server of §5.  Output is
// deterministic (work items are processed in sorted key order and merged
// in that order regardless of thread interleaving).  When `trace` is set,
// each worker thread records a "cluster.worker" span with the number of
// edges/vertices it processed.
ClusteringResult cluster_stg_parallel(const Stg& stg,
                                      const ClusterOptions& opts,
                                      int threads,
                                      obs::TraceRecorder* trace = nullptr);

}  // namespace vapro::core
