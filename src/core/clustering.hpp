// Fixed-workload identification by clustering (paper §3.4, Algorithm 1).
//
// Per STG edge/vertex, workload vectors are sorted by Euclidean norm; the
// unprocessed fragment with the smallest norm seeds a cluster that absorbs
// every fragment within a relative distance threshold (5% by default).
// Sorting by norm makes the sweep linear: members of a seed's cluster can
// only live in the norm window [‖seed‖, ‖seed‖·(1+threshold)], because
// |‖a‖−‖b‖| ≤ ‖a−b‖.
//
// Clusters with fewer than `min_cluster_size` members are flagged "rare"
// (Algorithm 1 line 8): they are excluded from variance normalization but
// reported so users can inspect non-repeated long executions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/core/stg.hpp"
#include "src/obs/trace_export.hpp"
#include "src/pmu/counters.hpp"

namespace vapro::util {
class WorkerPool;
}

namespace vapro::core {

struct ClusterOptions {
  // Relative distance threshold for cluster membership (paper: 5%).
  double threshold = 0.05;
  // Minimum members for a cluster to count as repeated fixed workload
  // (paper: 5).
  int min_cluster_size = 5;
  // Proxy metrics forming the computation workload vector (paper default:
  // TOT_INS; users may add e.g. MEM_REFS for precision at extra cost).
  std::vector<pmu::Counter> proxies = {pmu::Counter::kTotIns};
};

struct Cluster {
  // The edge/vertex this cluster belongs to.
  StateKey from = kStartState;
  StateKey to = kStartState;
  FragmentKind kind = FragmentKind::kComputation;
  std::vector<std::size_t> members;  // fragment indices into the Stg
  double seed_norm = 0.0;            // least norm in the cluster
  bool rare = false;
};

struct ClusteringResult {
  std::vector<Cluster> clusters;
  // fragment index → cluster index; every clustered fragment appears.
  std::unordered_map<std::size_t, std::size_t> assignment;

  std::size_t rare_count() const;
};

// Cross-window cluster-seed cache (the steady-state fast path of the
// pipelined server).  Per edge/vertex it carries the previous window's
// cluster seeds — norm-sorted workload vectors — forward, so a window
// whose execution paths repeat last window's merely ATTACHES its fragments
// to the cached seeds (one sorted sweep) instead of re-deriving every
// seed from scratch.  Two properties matter more than the speedup:
//
//   * Stable ordering: entries live in a std::map sorted by item key and
//     each entry's seeds stay sorted by (norm, insertion order), so cache
//     contents — and therefore clustering output — are a pure function of
//     the window sequence, never of thread interleaving.
//   * Stable identity: a recurring cluster keeps its cached seed (and thus
//     its seed_norm), so the ClusterBaseline key of a steady-state cluster
//     cannot drift between windows.
//
// Thread-safety contract: prepare() runs on the coordinating thread before
// clustering fans out; worker threads then touch only their own item's
// Entry (distinct map nodes), and the map itself is never mutated while
// workers run.
class ClusterSeedCache {
 public:
  struct Seed {
    WorkloadVector vec;
    double norm = 0.0;
  };
  struct Entry {
    std::vector<Seed> seeds;  // sorted by norm, ascending
  };

  // Seeds kept per edge/vertex; beyond this the largest-norm seeds are
  // evicted first (they are the rarest, most transient classes).
  static constexpr std::size_t kMaxSeedsPerEntry = 256;

  // Ensures an Entry exists for every key and returns the entries in key
  // order (aligned with the keys vector).  Must be called before workers
  // start; the map is not touched again until they finish.
  std::vector<Entry*> prepare(const std::vector<std::uint64_t>& keys);

  // Drops every cached seed (the "pipeline.cache" hazard site's fail
  // action): the next window re-clusters from scratch.
  void invalidate();

  std::size_t entries() const { return cache_.size(); }
  std::uint64_t seed_hits() const { return seed_hits_; }
  std::uint64_t seed_misses() const { return seed_misses_; }
  std::uint64_t invalidations() const { return invalidations_; }

  // Bookkeeping from worker threads; called once per item after its sweep
  // with per-item tallies (each worker owns disjoint items, and the
  // counters are only read after the join, so plain adds would race only
  // if the contract above were violated — they are guarded anyway).
  void record(std::uint64_t hits, std::uint64_t misses);

 private:
  std::map<std::uint64_t, Entry> cache_;
  mutable std::mutex stats_mu_;
  std::uint64_t seed_hits_ = 0;
  std::uint64_t seed_misses_ = 0;
  std::uint64_t invalidations_ = 0;
};

// Clusters one fragment set (all fragments must share an edge or vertex).
// `indices` index into stg.fragments().
std::vector<Cluster> cluster_fragments(const Stg& stg,
                                       const std::vector<std::size_t>& indices,
                                       const ClusterOptions& opts);

// cluster_fragments with a seed-cache entry: fragments within threshold of
// a cached seed join that seed's cluster (keeping the cached seed_norm);
// only the remainder runs the fresh seeding sweep.  The entry is updated
// in place to this window's seed set.  `cache` collects hit/miss tallies.
std::vector<Cluster> cluster_fragments_cached(
    const Stg& stg, const std::vector<std::size_t>& indices,
    const ClusterOptions& opts, ClusterSeedCache::Entry* entry,
    ClusterSeedCache* cache);

// Runs Algorithm 1 over every edge and vertex of the STG.
ClusteringResult cluster_stg(const Stg& stg, const ClusterOptions& opts);

// Same result, but edge/vertex work items are sharded across `pool`'s
// lanes — the multi-threaded analysis server of §5.  Output is
// deterministic: items are gathered in sorted (key, kind) order, each
// lane writes only its own item-indexed slots, and the merge walks the
// slots in item order — so the result is byte-identical to cluster_stg
// for any lane count (a null pool or one lane IS the serial loop).  When
// `trace` is set, each lane that ran at least one item records a
// "cluster.shard" span with its lane index and item count.  When `cache`
// is set, each item clusters through its seed-cache entry
// (cluster_fragments_cached); entries are prepared up front on the
// coordinating thread so lanes never mutate the shared map.  A task that
// throws is contained by the pool and its items are re-clustered
// serially, keeping the output equivalent.
ClusteringResult cluster_stg_parallel(const Stg& stg,
                                      const ClusterOptions& opts,
                                      util::WorkerPool* pool,
                                      obs::TraceRecorder* trace = nullptr,
                                      ClusterSeedCache* cache = nullptr);

// Convenience overload owning a transient pool of `threads` lanes for the
// duration of the call (threads == 1 skips the pool entirely).  Prefer the
// pool overload on the hot path — the AnalysisServer keeps one persistent
// pool per server instead of spawning threads per window.
ClusteringResult cluster_stg_parallel(const Stg& stg,
                                      const ClusterOptions& opts,
                                      int threads,
                                      obs::TraceRecorder* trace = nullptr,
                                      ClusterSeedCache* cache = nullptr);

}  // namespace vapro::core
