// Variance diagnosis (paper §4.2–4.3).
//
// Two quantification paths:
//  * formula-based — time-quantified factors convert their counters to
//    seconds directly (breakdown.hpp);
//  * OLS-based — count-only factors (page faults, context switches,
//    signals) get a seconds-per-event cost from an ordinary least squares
//    regression of fragment time on factor values, guarded by the
//    Farrar–Glauber multicollinearity test; only coefficients with
//    p < 0.05 survive.
//
// Contribution analysis (§4.3): within each fixed-workload cluster,
// fragments costing more than `abnormal_ratio` × the fastest are abnormal;
// a factor's contribution is the summed excess of its per-fragment time
// over its mean in the normal fragments.  The progressive diagnoser walks
// the breakdown tree stage by stage, keeping only factors that contribute
// more than `major_share` of the variance, and asks for finer-grained
// counters for the next stage — so only a handful of programmable counters
// is ever active at once.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/breakdown.hpp"
#include "src/core/clustering.hpp"
#include "src/core/stg.hpp"
#include "src/obs/context.hpp"

namespace vapro::core {

// Optional region of interest: §3.5 lets the user select a heat-map region
// for diagnosis.  When set, only abnormal fragments inside the region
// contribute to factor attribution; the normal (reference) fragments are
// still drawn from the whole cluster — the "twins" live outside the region.
struct FocusRegion {
  int rank_lo = 0;
  int rank_hi = 1 << 30;
  double t_lo = 0.0;
  double t_hi = 1e300;

  bool contains(int rank, double start, double end) const {
    return rank >= rank_lo && rank <= rank_hi && end > t_lo && start < t_hi;
  }
};

struct DiagnosisOptions {
  double abnormal_ratio = 1.2;     // paper's k_a
  double major_share = 0.25;       // contribution share for "major factor"
  double significance_alpha = 0.05;
  int min_cluster_fragments = 8;   // clusters smaller than this are skipped
  // Restrict attribution to a user-selected heat-map region.
  std::optional<FocusRegion> focus;
  // Fragments below this STG index are overlap carry-ins (Fig 8): they
  // shape cluster references/minima but never contribute variance twice.
  std::size_t live_begin = 0;
  // Self-telemetry (src/obs): stage-descent events and counters; null
  // disables.  Borrowed, must outlive the diagnoser.
  obs::ObsContext* obs = nullptr;
};

// --- §4.2: full OLS quantification (also the formula-vs-OLS check). ---

struct OlsFactorEstimate {
  FactorId id = FactorId::kRoot;
  // Estimated total seconds attributable to this factor over the fragments.
  double total_seconds = 0.0;
  double p_value = 1.0;
  bool significant = false;
  // True when the factor was dropped for multicollinearity and its effect
  // recovered through its linear relation with the kept factors.
  bool recovered_from_collinearity = false;
  // True when the factor had no variance across fragments (nothing to fit).
  bool constant = false;
};

struct OlsQuantification {
  bool ok = false;
  double r_squared = 0.0;
  std::vector<OlsFactorEstimate> estimates;
};

// Regresses fragment durations on min-max-normalized factor values for the
// fragments of one cluster.
OlsQuantification ols_quantify(const Stg& stg,
                               const std::vector<std::size_t>& members,
                               const std::vector<FactorId>& factors,
                               const pmu::MachineParams& machine,
                               double alpha = 0.05);

// --- §4.3: contribution analysis over one window. ---

struct FactorContribution {
  FactorId id = FactorId::kRoot;
  double contribution_seconds = 0.0;  // Σ_abnormal (t_f − ref_f)
  double duration_seconds = 0.0;      // abnormal time where f is major
  bool major = false;
};

struct ContributionWindow {
  std::vector<FactorContribution> factors;
  double total_variance_seconds = 0.0;  // Σ_abnormal (t − fastest)
  double abnormal_seconds = 0.0;        // Σ duration of abnormal fragments
  double observed_seconds = 0.0;        // Σ duration of all fragments used
  std::size_t abnormal_fragments = 0;
};

// Computes contributions of `factors` over every usable computation cluster
// in the window.  Per-event costs of count-only factors are fitted per
// cluster by OLS on the residual time (duration − Σ quantified factors).
ContributionWindow analyze_contributions(const Stg& stg,
                                         const ClusteringResult& clusters,
                                         const std::vector<FactorId>& factors,
                                         const pmu::MachineParams& machine,
                                         const DiagnosisOptions& opts);

// --- the progressive state machine. ---

struct DiagnosisFinding {
  FactorId id = FactorId::kRoot;
  int stage = 0;
  double contribution_seconds = 0.0;
  double share = 0.0;           // of the window's total variance
  double duration_seconds = 0.0;
  double duration_share = 0.0;  // of the window's observed time
  bool major = false;
};

struct DiagnosisReport {
  std::vector<DiagnosisFinding> findings;  // exploration order
  std::vector<FactorId> culprits;          // deepest major factors
  double total_variance_seconds = 0.0;
  std::string summary() const;
};

class ProgressiveDiagnoser {
 public:
  ProgressiveDiagnoser(pmu::MachineParams machine, DiagnosisOptions opts);

  // Programmable counters the current stage needs — the client must have
  // these active for the fed window's fragments to be diagnosable.
  std::vector<pmu::Counter> counters_needed() const;

  // Feeds one analysis window.  Advances to the next stage when the window
  // contained enough abnormal fragments to decide major factors.
  // `live_begin`: first non-carry fragment index (overlapping windows).
  void feed(const Stg& stg, const ClusteringResult& clusters,
            std::size_t live_begin = 0);

  bool finished() const { return finished_; }
  int stage() const { return stage_; }
  const DiagnosisReport& report() const { return report_; }

  // Restarts the diagnosis from stage 1, optionally restricted to a
  // user-selected heat-map region (§3.5's region-of-interest flow).
  void restart(std::optional<FocusRegion> focus = std::nullopt);

 private:
  pmu::MachineParams machine_;
  DiagnosisOptions opts_;
  std::vector<FactorId> frontier_;
  int stage_ = 1;
  bool finished_ = false;
  DiagnosisReport report_;
};

}  // namespace vapro::core
