#include "src/core/columns.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <utility>

namespace vapro::core {

// The columns are memcpy'd on growth/copy/append; every element type must
// be trivially copyable (and destructor-free: the arena never destroys).
static_assert(std::is_trivially_copyable_v<pmu::CounterSample>);
static_assert(std::is_trivially_copyable_v<sim::CommArgs>);
static_assert(std::is_trivially_copyable_v<FragmentKind>);
static_assert(std::is_trivially_copyable_v<sim::OpKind>);

Fragment FragmentView::materialize() const {
  Fragment f;
  f.kind = kind();
  f.rank = rank();
  f.from = from();
  f.to = to();
  f.start_time = start_time();
  f.end_time = end_time();
  f.counters = counters();
  f.args = args();
  f.op = op();
  f.truth_class = truth_class();
  return f;
}

FragmentColumns::FragmentColumns(FragmentColumns&& other) noexcept {
  steal(other);
}

FragmentColumns& FragmentColumns::operator=(FragmentColumns&& other) noexcept {
  if (this != &other) steal(other);
  return *this;
}

FragmentColumns::FragmentColumns(const FragmentColumns& other) {
  copy_from(other);
}

FragmentColumns& FragmentColumns::operator=(const FragmentColumns& other) {
  if (this != &other) {
    clear();
    copy_from(other);
  }
  return *this;
}

void FragmentColumns::steal(FragmentColumns& other) noexcept {
  arena_ = std::move(other.arena_);
  size_ = other.size_;
  capacity_ = other.capacity_;
  kind_ = other.kind_;
  rank_ = other.rank_;
  from_ = other.from_;
  to_ = other.to_;
  start_ = other.start_;
  end_ = other.end_;
  counters_ = other.counters_;
  args_ = other.args_;
  op_ = other.op_;
  truth_ = other.truth_;
  other.size_ = 0;
  other.capacity_ = 0;
  other.kind_ = nullptr;
  other.rank_ = nullptr;
  other.from_ = nullptr;
  other.to_ = nullptr;
  other.start_ = nullptr;
  other.end_ = nullptr;
  other.counters_ = nullptr;
  other.args_ = nullptr;
  other.op_ = nullptr;
  other.truth_ = nullptr;
}

void FragmentColumns::copy_from(const FragmentColumns& other) {
  reserve(other.size_);
  if (other.size_ != 0) {
    std::memcpy(kind_, other.kind_, other.size_ * sizeof(*kind_));
    std::memcpy(rank_, other.rank_, other.size_ * sizeof(*rank_));
    std::memcpy(from_, other.from_, other.size_ * sizeof(*from_));
    std::memcpy(to_, other.to_, other.size_ * sizeof(*to_));
    std::memcpy(start_, other.start_, other.size_ * sizeof(*start_));
    std::memcpy(end_, other.end_, other.size_ * sizeof(*end_));
    std::memcpy(counters_, other.counters_, other.size_ * sizeof(*counters_));
    std::memcpy(args_, other.args_, other.size_ * sizeof(*args_));
    std::memcpy(op_, other.op_, other.size_ * sizeof(*op_));
    std::memcpy(truth_, other.truth_, other.size_ * sizeof(*truth_));
  }
  size_ = other.size_;
}

void FragmentColumns::clear() {
  size_ = 0;
  capacity_ = 0;
  kind_ = nullptr;
  rank_ = nullptr;
  from_ = nullptr;
  to_ = nullptr;
  start_ = nullptr;
  end_ = nullptr;
  counters_ = nullptr;
  args_ = nullptr;
  op_ = nullptr;
  truth_ = nullptr;
  arena_.reset();
}

void FragmentColumns::reserve(std::size_t n) {
  if (n > capacity_) grow(n);
}

void FragmentColumns::grow(std::size_t min_capacity) {
  std::size_t cap = std::max<std::size_t>(capacity_ * 2, 64);
  cap = std::max(cap, min_capacity);

  auto* kind = arena_.allocate_array<FragmentKind>(cap);
  auto* rank = arena_.allocate_array<sim::RankId>(cap);
  auto* from = arena_.allocate_array<StateKey>(cap);
  auto* to = arena_.allocate_array<StateKey>(cap);
  auto* start = arena_.allocate_array<double>(cap);
  auto* end = arena_.allocate_array<double>(cap);
  auto* counters = arena_.allocate_array<pmu::CounterSample>(cap);
  auto* args = arena_.allocate_array<sim::CommArgs>(cap);
  auto* op = arena_.allocate_array<sim::OpKind>(cap);
  auto* truth = arena_.allocate_array<std::int64_t>(cap);

  if (size_ != 0) {
    std::memcpy(kind, kind_, size_ * sizeof(*kind));
    std::memcpy(rank, rank_, size_ * sizeof(*rank));
    std::memcpy(from, from_, size_ * sizeof(*from));
    std::memcpy(to, to_, size_ * sizeof(*to));
    std::memcpy(start, start_, size_ * sizeof(*start));
    std::memcpy(end, end_, size_ * sizeof(*end));
    std::memcpy(counters, counters_, size_ * sizeof(*counters));
    std::memcpy(args, args_, size_ * sizeof(*args));
    std::memcpy(op, op_, size_ * sizeof(*op));
    std::memcpy(truth, truth_, size_ * sizeof(*truth));
  }

  capacity_ = cap;
  kind_ = kind;
  rank_ = rank;
  from_ = from;
  to_ = to;
  start_ = start;
  end_ = end;
  counters_ = counters;
  args_ = args;
  op_ = op;
  truth_ = truth;
}

void FragmentColumns::push_back(const Fragment& f) {
  if (size_ == capacity_) grow(size_ + 1);
  const std::size_t i = size_++;
  kind_[i] = f.kind;
  rank_[i] = f.rank;
  from_[i] = f.from;
  to_[i] = f.to;
  start_[i] = f.start_time;
  end_[i] = f.end_time;
  counters_[i] = f.counters;
  args_[i] = f.args;
  op_[i] = f.op;
  truth_[i] = f.truth_class;
}

void FragmentColumns::push_back(const FragmentView& v) {
  if (size_ == capacity_) grow(size_ + 1);
  const std::size_t i = size_++;
  kind_[i] = v.kind();
  rank_[i] = v.rank();
  from_[i] = v.from();
  to_[i] = v.to();
  start_[i] = v.start_time();
  end_[i] = v.end_time();
  counters_[i] = v.counters();
  args_[i] = v.args();
  op_[i] = v.op();
  truth_[i] = v.truth_class();
}

void FragmentColumns::append(const FragmentColumns& other) {
  if (other.size_ == 0) return;
  reserve(size_ + other.size_);
  std::memcpy(kind_ + size_, other.kind_, other.size_ * sizeof(*kind_));
  std::memcpy(rank_ + size_, other.rank_, other.size_ * sizeof(*rank_));
  std::memcpy(from_ + size_, other.from_, other.size_ * sizeof(*from_));
  std::memcpy(to_ + size_, other.to_, other.size_ * sizeof(*to_));
  std::memcpy(start_ + size_, other.start_, other.size_ * sizeof(*start_));
  std::memcpy(end_ + size_, other.end_, other.size_ * sizeof(*end_));
  std::memcpy(counters_ + size_, other.counters_,
              other.size_ * sizeof(*counters_));
  std::memcpy(args_ + size_, other.args_, other.size_ * sizeof(*args_));
  std::memcpy(op_ + size_, other.op_, other.size_ * sizeof(*op_));
  std::memcpy(truth_ + size_, other.truth_, other.size_ * sizeof(*truth_));
  size_ += other.size_;
}

void FragmentColumns::set(std::size_t i, const Fragment& f) {
  kind_[i] = f.kind;
  rank_[i] = f.rank;
  from_[i] = f.from;
  to_[i] = f.to;
  start_[i] = f.start_time;
  end_[i] = f.end_time;
  counters_[i] = f.counters;
  args_[i] = f.args;
  op_[i] = f.op;
  truth_[i] = f.truth_class;
}

WorkloadVector make_workload_vector(
    const FragmentView& f, const std::vector<pmu::Counter>& proxies) {
  WorkloadVector v;
  v.dims.resize(workload_dim_count(f.kind(), proxies.size()));
  write_workload_dims(f.kind(), f.counters(), f.args(), f.op(), proxies,
                      v.dims.data());
  return v;
}

}  // namespace vapro::core
