// Public entry point of the Vapro library.
//
// Attach a VaproSession to a Simulator before running an application and
// read the detection/diagnosis results afterwards:
//
//   sim::Simulator simulator(config);
//   vapro::core::VaproSession vapro(simulator, {});
//   simulator.run(apps::cg({...}));
//   std::cout << vapro.detection_summary();
//   std::cout << vapro.diagnosis().summary();
//
// The session owns the client (interceptor) and the analysis server and
// wires the periodic window flush (paper Fig 8): every `window_seconds` of
// virtual time the client buffers are drained into the server, analyzed,
// and the progressive diagnoser may reconfigure the clients' PMU sets for
// the next window.
#pragma once

#include <memory>
#include <string>

#include "src/core/client.hpp"
#include "src/core/server.hpp"
#include "src/obs/context.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::core {

struct VaproOptions {
  StgMode stg_mode = StgMode::kContextFree;
  ClusterOptions cluster;
  DiagnosisOptions diagnosis;
  double variance_threshold = 0.85;
  double bin_seconds = 0.25;
  // Reporting period (the paper deploys 15 s; our simulated runs are
  // shorter, so the default window is denser).
  double window_seconds = 1.0;
  // Overlap between consecutive analysis windows (paper Fig 8) so
  // boundary-straddling clusters still find their twins.
  double window_overlap_seconds = 0.0;
  int analysis_threads = 1;
  // Analysis pipeline depth (ServerOptions::pipeline_depth): windows
  // admitted past process_window before the drain blocks.  1 = synchronous.
  int pipeline_depth = 1;
  // Carry cluster seeds across windows (ServerOptions::cluster_seed_cache).
  bool cluster_seed_cache = false;
  bool run_diagnosis = true;
  SamplingPolicy sampling = SamplingPolicy::kNone;
  int sampling_warmup = 64;
  bool record_eval_pairs = false;
  int pmu_budget = 4;
  double pmu_jitter = 0.003;
  // When proxy metrics + stage counters exceed the budget, time-multiplex
  // the PMU (PAPI style) instead of dropping the proxies.  "Collecting
  // more performance metrics improves the precision of workload
  // representation but introduces extra overhead" (§3.4) — here the
  // overhead is inflated read error at reduced duty cycle.
  bool allow_multiplexing = false;
  std::uint64_t seed = 42;
  // Optional per-window hook (see ServerOptions::window_observer).
  std::function<void(const Stg&, const ClusteringResult&)> window_observer;
  // Self-telemetry (src/obs): pipeline metrics, PipelineStats snapshots,
  // Chrome-trace spans, and tool-vs-app overhead accounting across the
  // whole client → server → diagnoser path.  Null (the default) disables
  // every instrument; borrowed, must outlive the session.
  obs::ObsContext* obs = nullptr;
  // Wall-clock source for drain/stage timings (null = the process-wide
  // real clock); tests install a util::VirtualClock.  Borrowed.
  util::Clock* clock = nullptr;
  // --- external ingest transport (src/net service plane) ---
  // When `batch_transport` is set the periodic window flush hands each
  // drained batch to the hook instead of an in-process server; the hook
  // owns delivery (e.g. a net::IngestClient over loopback).  The session
  // then reads detection/diagnosis results from `external_server`, the
  // backend the remote plane feeds — borrowed, must outlive the session.
  // `transport_sync` is called after each hand-off (when run_diagnosis)
  // so the PMU feedback loop observes the window's results before
  // reprogramming counters; it must block until the batch is applied.
  // core stays independent of src/net: the hooks are plain callables.
  std::function<void(FragmentBatch&&, double)> batch_transport;
  AnalysisServer* external_server = nullptr;
  std::function<void()> transport_sync;
};

// The ServerOptions a VaproSession would construct for its in-process
// server.  Transports that terminate on a remote AnalysisServer (the
// src/net ingest plane) build the backend from the same options so a
// networked run is configured identically to an in-process one.
ServerOptions server_options_from(const VaproOptions& opts,
                                  const pmu::MachineParams& machine,
                                  ClusterBaseline* shared_baseline = nullptr);

class VaproSession {
 public:
  // Attaches to `simulator`; detaches on destruction.  When
  // `shared_baseline` is given (MultiRunStudy), normalization minima are
  // read/updated there so runs compare against the best twin of any run.
  VaproSession(sim::Simulator& simulator, VaproOptions opts,
               ClusterBaseline* shared_baseline = nullptr);
  ~VaproSession();
  VaproSession(const VaproSession&) = delete;
  VaproSession& operator=(const VaproSession&) = delete;

  // --- detection ---
  const Heatmap& computation_map() const {
    return analysis_->computation_map();
  }
  const Heatmap& communication_map() const {
    return analysis_->communication_map();
  }
  const Heatmap& io_map() const { return analysis_->io_map(); }
  std::vector<VarianceRegion> locate(FragmentKind kind) const {
    return analysis_->locate(kind);
  }
  // Human-readable report: per-category variance regions with quantified
  // loss, ordered by impact (paper Fig 2 step 7).
  std::string detection_summary() const;

  // --- diagnosis ---
  const DiagnosisReport& diagnosis() const { return analysis_->diagnosis(); }
  // Restart diagnosis focused on a user-selected heat-map region (§3.5);
  // subsequent windows attribute only that region's abnormal fragments.
  void refocus_diagnosis(std::optional<FocusRegion> focus) {
    analysis_->refocus_diagnosis(std::move(focus));
  }
  // Rare-but-expensive execution paths (Algorithm 1 line 8).
  const std::vector<RareFinding>& rare_findings() const {
    return analysis_->rare_findings();
  }

  // --- coverage / overhead bookkeeping (Table 1) ---
  // `total_execution_seconds` = Σ per-rank wall time of the run.
  double coverage(double total_execution_seconds) const {
    return analysis_->coverage().coverage(total_execution_seconds);
  }
  const CoverageAccumulator& coverage_accumulator() const {
    return analysis_->coverage();
  }
  std::uint64_t bytes_recorded() const { return client_->bytes_recorded(); }
  std::uint64_t fragments_recorded() const {
    return client_->fragments_recorded();
  }
  std::uint64_t invocations_sampled_out() const {
    return client_->invocations_sampled_out();
  }

  // --- evaluation (Table 2) ---
  stats::VMeasure clustering_quality() const {
    return analysis_->clustering_quality();
  }

  const AnalysisServer& server() const { return *analysis_; }
  const VaproClient& client() const { return *client_; }

 private:
  sim::Simulator& simulator_;
  VaproOptions opts_;
  std::unique_ptr<VaproClient> client_;
  std::unique_ptr<AnalysisServer> server_;  // null when transport-attached
  AnalysisServer* analysis_ = nullptr;      // server_ or external_server
  std::uint64_t periodic_id_ = 0;
};

}  // namespace vapro::core
