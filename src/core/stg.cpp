#include "src/core/stg.hpp"

#include <sstream>

#include "src/util/check.hpp"

namespace vapro::core {

StateKey make_state_key(StgMode mode, const sim::InvocationInfo& info) {
  // Never collide with the reserved start state: offset the site hash.
  std::uint64_t h = 0x100 + static_cast<std::uint64_t>(info.site) * 0x9e3779b97f4a7c15ULL;
  if (mode == StgMode::kContextAware) {
    for (std::uint32_t frame : info.path) {
      h ^= frame + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
  }
  return h == kStartState ? 1 : h;
}

StateKey Stg::touch_vertex(const sim::InvocationInfo& info) {
  StateKey key = make_state_key(mode_, info);
  auto [it, inserted] = vertices_.try_emplace(key);
  if (inserted) {
    it->second.key = key;
    it->second.site = info.site;
    it->second.kind = info.kind;
    it->second.path = info.path;
  }
  return key;
}

void Stg::index_fragment(std::size_t idx, FragmentKind kind, StateKey from,
                         StateKey to) {
  if (kind == FragmentKind::kComputation) {
    auto [it, inserted] = edges_.try_emplace(edge_key(from, to));
    if (inserted) {
      it->second.from = from;
      it->second.to = to;
    }
    it->second.fragments.push_back(idx);
  } else {
    auto it = vertices_.find(to);
    VAPRO_CHECK_MSG(it != vertices_.end(),
                    "vertex fragment for unknown state " << to);
    it->second.fragments.push_back(idx);
  }
}

std::size_t Stg::add_fragment(const Fragment& f) {
  const std::size_t idx = fragments_.size();
  index_fragment(idx, f.kind, f.from, f.to);
  fragments_.push_back(f);
  return idx;
}

void Stg::adopt_fragments(FragmentColumns&& cols) {
  const std::size_t begin = fragments_.size();
  if (begin == 0) {
    fragments_ = std::move(cols);
  } else {
    fragments_.append(cols);
  }
  // Index everything the batch brought in; add_fragment already indexed
  // anything that was there before.
  for (std::size_t i = begin; i < fragments_.size(); ++i) {
    index_fragment(i, fragments_.kind(i), fragments_.from(i),
                   fragments_.to(i));
  }
}

std::string Stg::state_name(StateKey key) const {
  if (key == kStartState) return "<start>";
  auto it = vertices_.find(key);
  if (it == vertices_.end()) return "<unknown>";
  std::ostringstream oss;
  oss << sim::op_kind_name(it->second.kind) << "@site" << it->second.site;
  if (mode_ == StgMode::kContextAware && !it->second.path.empty()) {
    oss << " path[";
    for (std::size_t i = 0; i < it->second.path.size(); ++i) {
      if (i) oss << '/';
      oss << it->second.path[i];
    }
    oss << ']';
  }
  return oss.str();
}

void Stg::clear_fragments() {
  fragments_.clear();
  for (auto& [key, v] : vertices_) v.fragments.clear();
  for (auto& [key, e] : edges_) e.fragments.clear();
}

}  // namespace vapro::core
