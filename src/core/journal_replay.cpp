#include "src/core/journal_replay.hpp"

#include <algorithm>
#include <sstream>

#include "src/core/breakdown.hpp"
#include "src/core/report.hpp"
#include "src/util/cli.hpp"

namespace vapro::core {

namespace {

constexpr FragmentKind kAllKinds[] = {FragmentKind::kComputation,
                                      FragmentKind::kCommunication,
                                      FragmentKind::kIo};

int kind_index(const std::string& name) {
  for (FragmentKind kind : kAllKinds)
    if (name == fragment_kind_name(kind)) return static_cast<int>(kind);
  return -1;
}

}  // namespace

FactorId factor_from_name(const std::string& name) {
  for (int i = 0; i < kFactorCount; ++i) {
    const FactorId id = static_cast<FactorId>(i);
    if (factor_name(id) == name) return id;
  }
  return FactorId::kRoot;
}

JournalSummary summarize_journal(
    const std::vector<obs::JournalEvent>& events) {
  JournalSummary s;
  std::uint64_t region_revision[3] = {0, 0, 0};
  for (const obs::JournalEvent& ev : events) {
    ++s.events;
    s.virtual_time = std::max(s.virtual_time, ev.virtual_time);
    if (ev.type == "window") {
      ++s.windows;
    } else if (ev.type == "variance_region" || ev.type == "variance_clear") {
      const int k = kind_index(ev.str("kind"));
      if (k < 0) {
        s.error = "event seq " + std::to_string(ev.seq) +
                  ": unknown region kind '" + ev.str("kind") + "'";
        return s;
      }
      // Only the highest revision per category survives — later events
      // supersede earlier snapshots of the same region set.
      const auto revision = static_cast<std::uint64_t>(ev.number("revision"));
      if (revision > region_revision[k]) {
        region_revision[k] = revision;
        s.regions[k].clear();
      }
      if (revision == region_revision[k] && ev.type == "variance_region") {
        VarianceRegion r;
        r.rank_lo = static_cast<int>(ev.number("rank_lo"));
        r.rank_hi = static_cast<int>(ev.number("rank_hi"));
        r.bin_lo = static_cast<int>(ev.number("bin_lo"));
        r.bin_hi = static_cast<int>(ev.number("bin_hi"));
        r.cells = static_cast<std::size_t>(ev.number("cells"));
        r.mean_perf = ev.number("mean_perf");
        r.impact_seconds = ev.number("impact_seconds");
        s.regions[k].push_back(r);
        s.bin_seconds = ev.number("bin_seconds", s.bin_seconds);
      }
    } else if (ev.type == "rare_finding") {
      RareFinding f;
      f.state = ev.str("state");
      const int k = kind_index(ev.str("kind"));
      f.kind = k >= 0 ? static_cast<FragmentKind>(k)
                      : FragmentKind::kComputation;
      f.executions = static_cast<std::size_t>(ev.number("executions"));
      f.total_seconds = ev.number("total_seconds");
      f.longest_seconds = ev.number("longest_seconds");
      f.window_start = ev.virtual_time;
      s.rare_findings.push_back(std::move(f));
    } else if (ev.type == "diagnosis_window") {
      s.diagnosis.total_variance_seconds += ev.number("variance_seconds");
    } else if (ev.type == "diagnosis_finding") {
      DiagnosisFinding f;
      f.id = factor_from_name(ev.str("factor"));
      f.stage = static_cast<int>(ev.number("stage"));
      f.contribution_seconds = ev.number("contribution_seconds");
      f.share = ev.number("share");
      f.duration_seconds = ev.number("duration_seconds");
      f.duration_share = ev.number("duration_share");
      f.major = ev.flag("major");
      s.diagnosis.findings.push_back(f);
    } else if (ev.type == "diagnosis_finished") {
      s.diagnosis_finished = true;
      s.diagnosis.culprits.clear();
      for (const std::string& name : util::split(ev.str("culprits"), ','))
        if (!name.empty())
          s.diagnosis.culprits.push_back(factor_from_name(name));
    } else if (ev.type == "pmu_reprogram") {
      ++s.pmu_reprograms;
    } else if (ev.type == "alert") {
      ++s.alerts;
    } else if (ev.type == "window_latency") {
      s.window_latency.push_back(obs::window_latency_from_event(ev));
    } else if (ev.type == "critical_path") {
      ++s.critical_path_events;
    }
    // Unknown event types are skipped: newer minor producers may add
    // types, and the schema version gates incompatible changes.
  }
  s.ok = true;
  return s;
}

JournalSummary summarize_journal_file(const std::string& path) {
  obs::JournalReadResult read = obs::read_journal(path);
  if (!read.ok) {
    JournalSummary s;
    s.error = read.error;
    return s;
  }
  JournalSummary s = summarize_journal(read.events);
  // Compaction removed superseded events but recorded how many; adding
  // them back keeps the replay's `events:` line — and therefore the whole
  // rendered summary — byte-identical to the uncompacted journal's.
  s.events += read.compacted_dropped;
  return s;
}

std::string render_journal_summary(const JournalSummary& s) {
  std::ostringstream oss;
  oss << "# Vapro journal replay\n";
  oss << "events: " << s.events << ", windows: " << s.windows
      << ", pmu reprograms: " << s.pmu_reprograms << ", alerts: " << s.alerts
      << "\n";

  for (FragmentKind kind : kAllKinds) {
    oss << "\n## " << fragment_kind_name(kind) << "\n";
    oss << render_region_table(s.regions[static_cast<int>(kind)],
                               s.bin_seconds);
  }

  if (!s.rare_findings.empty()) {
    oss << "\n## rare execution paths (check manually — Algorithm 1 line 8)\n";
    // The journal keeps every finding; show them largest-first like
    // ServerGroup::merged_rare_findings.
    std::vector<RareFinding> sorted = s.rare_findings;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const RareFinding& a, const RareFinding& b) {
                       return a.total_seconds > b.total_seconds;
                     });
    oss << render_rare_table(sorted);
  }

  if (!s.window_latency.empty()) {
    // Re-fold the journaled per-window timings through a tracker with the
    // live defaults (same keep), so this table matches the producer's
    // render_critical_path_table output character-for-character.
    obs::CriticalPathTracker tracker;
    for (const obs::WindowLatencyRecord& r : s.window_latency)
      tracker.record(r);
    oss << "\n## critical path\n"
        << obs::render_critical_path_table(tracker.recent(), tracker.summary());
  }

  oss << "\n## diagnosis\n" << s.diagnosis.summary() << '\n';
  return oss.str();
}

}  // namespace vapro::core
