// State Transition Graph (paper §3.2, Definition 1).
//
// Vertices record running states (external invocations identified by
// call-site or call-path); edges record transitions between states (the
// computation snippets in between).  The STG is built online as intercept
// events stream in, and fragments are attached to the vertex/edge they
// belong to.
//
// Two context modes:
//   kContextFree  — state = call-site only (cheap; the paper's default
//                   after Table 1 shows it wins on coverage and overhead).
//   kContextAware — state = hash of (call-site, full region path), costing
//                   a backtrace per call but splitting states that share a
//                   call-site across different call paths.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/columns.hpp"
#include "src/core/fragment.hpp"
#include "src/sim/intercept.hpp"

namespace vapro::core {

enum class StgMode { kContextFree, kContextAware };

// Computes the state key of an invocation under the given mode.
StateKey make_state_key(StgMode mode, const sim::InvocationInfo& info);

// One vertex: an invocation state.  Fragments attached are the executions
// of that invocation (communication or IO).
struct StgVertex {
  StateKey key = kStartState;
  sim::CallSiteId site = 0;
  sim::OpKind kind = sim::OpKind::kProbe;
  std::vector<std::uint32_t> path;  // representative call path
  std::vector<std::size_t> fragments;  // indices into Stg::fragments()
};

// One edge: a state transition.  Fragments attached are the computation
// snippets executed between the two invocations.
struct StgEdge {
  StateKey from = kStartState;
  StateKey to = kStartState;
  std::vector<std::size_t> fragments;
};

class Stg {
 public:
  explicit Stg(StgMode mode = StgMode::kContextFree) : mode_(mode) {}

  StgMode mode() const { return mode_; }

  // Registers (or finds) the vertex for an invocation.
  StateKey touch_vertex(const sim::InvocationInfo& info);

  // Attaches a fragment; vertex fragments go to `f.to`, edge fragments to
  // (f.from, f.to).  Returns the fragment's index.
  std::size_t add_fragment(const Fragment& f);

  // Bulk attach of a whole window's columns.  When the STG holds no
  // fragments yet (the steady state: clear_fragments() ran at the end of
  // the previous window) this is an arena pointer swap — the batch's
  // columns become the STG's storage without copying a single fragment —
  // followed by one pass to build the per-edge/per-vertex index lists.
  void adopt_fragments(FragmentColumns&& cols);

  const FragmentColumns& fragments() const { return fragments_; }
  FragmentView fragment(std::size_t idx) const { return fragments_[idx]; }

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  // Iteration helpers for the clustering pass.
  const std::unordered_map<StateKey, StgVertex>& vertices() const {
    return vertices_;
  }
  const std::unordered_map<std::uint64_t, StgEdge>& edges() const {
    return edges_;
  }

  // Human-readable name of a state (site id, plus path in context-aware
  // mode) for reports.
  std::string state_name(StateKey key) const;

  // Drops all attached fragments but keeps the graph structure — called
  // after each analysis window so memory stays bounded (§3.5's windows).
  void clear_fragments();

  static std::uint64_t edge_key(StateKey from, StateKey to) {
    // 64→64 mix of the pair; collisions are astronomically unlikely for
    // the few thousand distinct transitions real programs exhibit.
    std::uint64_t h = from * 0x9e3779b97f4a7c15ULL;
    h ^= to + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }

 private:
  // Files fragment `idx` under its edge (computation) or vertex (comm/IO).
  void index_fragment(std::size_t idx, FragmentKind kind, StateKey from,
                      StateKey to);

  StgMode mode_;
  std::unordered_map<StateKey, StgVertex> vertices_;
  std::unordered_map<std::uint64_t, StgEdge> edges_;
  FragmentColumns fragments_;
};

}  // namespace vapro::core
