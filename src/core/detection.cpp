#include "src/core/detection.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace vapro::core {

std::uint64_t ClusterBaseline::key_of(const Cluster& c) const {
  // Quantize the seed norm logarithmically with the clustering threshold as
  // the quantum: two windows' clusters of the same workload class land in
  // the same bucket, adjacent classes (≥ threshold apart) do not.
  const double n = std::max(c.seed_norm, 1e-12);
  const std::int64_t bucket =
      static_cast<std::int64_t>(std::floor(std::log(n) / std::log1p(norm_quantum_)));
  std::uint64_t h = Stg::edge_key(c.from, c.to);
  h ^= static_cast<std::uint64_t>(bucket) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(c.kind) << 61;
  return h;
}

double ClusterBaseline::update(const Cluster& c, double window_min) {
  auto [it, inserted] = mins_.try_emplace(key_of(c), window_min);
  if (!inserted) it->second = std::min(it->second, window_min);
  return it->second;
}

std::vector<NormalizedFragment> normalize_fragments(
    const Stg& stg, const ClusteringResult& clusters,
    ClusterBaseline* baseline, std::size_t live_begin) {
  std::vector<NormalizedFragment> out;
  for (const Cluster& c : clusters.clusters) {
    if (c.rare) continue;
    double window_min = std::numeric_limits<double>::infinity();
    for (std::size_t idx : c.members)
      window_min = std::min(window_min, stg.fragment(idx).duration());
    double fastest = baseline ? baseline->update(c, window_min) : window_min;
    if (fastest <= 0.0) continue;  // zero-duration cluster: nothing to rank
    for (std::size_t idx : c.members) {
      if (idx < live_begin) continue;  // carry-in: context only
      const FragmentView f = stg.fragment(idx);
      NormalizedFragment nf;
      nf.frag_idx = idx;
      nf.rank = f.rank();
      nf.start = f.start_time();
      nf.end = f.end_time();
      nf.kind = f.kind();
      nf.perf = f.duration() > 0.0
                    ? std::min(1.0, fastest / f.duration())
                    : 1.0;
      out.push_back(nf);
    }
  }
  return out;
}

void CoverageAccumulator::add(const Stg& stg, const ClusteringResult& clusters,
                              std::size_t live_begin) {
  for (const Cluster& c : clusters.clusters) {
    for (std::size_t idx : c.members) {
      if (idx < live_begin) continue;  // carry-in: already counted
      const FragmentView f = stg.fragment(idx);
      const auto k = static_cast<std::size_t>(f.kind());
      observed[k] += f.duration();
      if (!c.rare) covered[k] += f.duration();
    }
  }
}

double CoverageAccumulator::coverage(double total_execution_seconds) const {
  if (total_execution_seconds <= 0.0) return 0.0;
  return std::min(1.0, covered_total() / total_execution_seconds);
}

void deposit_fragments(std::span<const NormalizedFragment> fragments,
                       Heatmap& computation, Heatmap& communication,
                       Heatmap& io) {
  for (const NormalizedFragment& nf : fragments) {
    switch (nf.kind) {
      case FragmentKind::kComputation:
        computation.deposit(nf.rank, nf.start, nf.end, nf.perf);
        break;
      case FragmentKind::kCommunication:
        communication.deposit(nf.rank, nf.start, nf.end, nf.perf);
        break;
      case FragmentKind::kIo:
        io.deposit(nf.rank, nf.start, nf.end, nf.perf);
        break;
    }
  }
}

}  // namespace vapro::core
