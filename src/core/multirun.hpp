// Between-executions variance analysis (paper §1: variance "happens in
// different processes or threads within one execution and between
// executions", Fig 1's repeated submissions).
//
// A MultiRunStudy owns one ClusterBaseline shared across executions: every
// run's fixed-workload fragments are normalized against the fastest twin
// observed in ANY run so far, so a submission that is uniformly slow —
// invisible to within-run comparison — still scores below 1.0.  After a
// calibration pass, slow submissions are flagged the moment they run.
#pragma once

#include <string>
#include <vector>

#include "src/core/detection.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::core {

struct RunSummary {
  int index = 0;
  double makespan = 0.0;
  // Weighted mean normalized computation performance vs the cross-run
  // baseline: ≈1 for a good run, < 1 for a slow submission.
  double mean_computation_perf = 1.0;
  double coverage = 0.0;
  std::uint64_t fragments = 0;
};

class MultiRunStudy {
 public:
  explicit MultiRunStudy(VaproOptions opts = {});

  // Runs `program` once on `simulator` with a fresh session whose
  // normalization baseline is the study-wide one.  Simulator::run()
  // reseeds per call, so repeated execute() calls on one simulator model
  // repeated job submissions.
  RunSummary execute(sim::Simulator& simulator,
                     const sim::Simulator::RankProgram& program);

  const std::vector<RunSummary>& runs() const { return runs_; }

  // Runs whose mean normalized performance is below `threshold`.
  std::vector<int> slow_runs(double threshold = 0.85) const;

  // Text report: per-run perf scores with slow submissions flagged.
  std::string summary(double threshold = 0.85) const;

 private:
  VaproOptions opts_;
  ClusterBaseline baseline_;
  std::vector<RunSummary> runs_;
};

}  // namespace vapro::core
