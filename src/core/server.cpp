#include "src/core/server.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace vapro::core {

AnalysisServer::AnalysisServer(int ranks, ServerOptions opts)
    : opts_(opts),
      ranks_(ranks),
      stg_(opts.stg_mode),
      baseline_(opts.cluster.threshold),
      comp_map_(ranks, opts.bin_seconds),
      comm_map_(ranks, opts.bin_seconds),
      io_map_(ranks, opts.bin_seconds),
      diagnoser_(opts.machine, opts.diagnosis) {
  VAPRO_CHECK(ranks > 0);
}

void AnalysisServer::refocus_diagnosis(std::optional<FocusRegion> focus) {
  diagnoser_.restart(std::move(focus));
}

void AnalysisServer::process_window(FragmentBatch batch) {
  for (const sim::InvocationInfo& info : batch.new_states)
    stg_.touch_vertex(info);
  // Carry-ins from the previous window's tail enter the STG first so
  // indices below `live_begin` are exactly the carried fragments.
  const std::size_t live_begin = overlap_carry_.size();
  for (Fragment& f : overlap_carry_) stg_.add_fragment(std::move(f));
  overlap_carry_.clear();
  for (Fragment& f : batch.fragments) {
    if (opts_.window_overlap_seconds > 0.0) {
      overlap_carry_.push_back(f);  // candidate for the next window
    }
    stg_.add_fragment(std::move(f));
  }
  fragments_ += batch.fragments.size();
  if (!overlap_carry_.empty()) {
    double window_end = 0.0;
    for (const Fragment& f : overlap_carry_)
      window_end = std::max(window_end, f.end_time);
    const double cut = window_end - opts_.window_overlap_seconds;
    std::erase_if(overlap_carry_,
                  [cut](const Fragment& f) { return f.end_time < cut; });
  }

  ClusteringResult clusters =
      cluster_stg_parallel(stg_, opts_.cluster, opts_.analysis_threads);
  rare_clusters_ += clusters.rare_count();

  // Algorithm 1 line 8: surface rare-but-expensive execution paths
  // (carry-ins were reported by the previous window already).
  for (const Cluster& c : clusters.clusters) {
    if (!c.rare) continue;
    RareFinding finding;
    finding.kind = c.kind;
    double first_start = 1e300;
    for (std::size_t idx : c.members) {
      if (idx < live_begin) continue;
      const Fragment& f = stg_.fragment(idx);
      ++finding.executions;
      finding.total_seconds += f.duration();
      finding.longest_seconds = std::max(finding.longest_seconds, f.duration());
      first_start = std::min(first_start, f.start_time);
    }
    if (finding.total_seconds < opts_.rare_report_min_seconds) continue;
    finding.state = c.kind == FragmentKind::kComputation
                        ? stg_.state_name(c.from) + " -> " + stg_.state_name(c.to)
                        : stg_.state_name(c.to);
    finding.window_start = first_start;
    rare_findings_.push_back(std::move(finding));
  }
  if (rare_findings_.size() > opts_.rare_report_limit) {
    std::sort(rare_findings_.begin(), rare_findings_.end(),
              [](const RareFinding& a, const RareFinding& b) {
                return a.total_seconds > b.total_seconds;
              });
    rare_findings_.resize(opts_.rare_report_limit);
  }

  ClusterBaseline* baseline =
      opts_.shared_baseline ? opts_.shared_baseline : &baseline_;
  std::vector<NormalizedFragment> normalized =
      normalize_fragments(stg_, clusters, baseline, live_begin);
  deposit_fragments(normalized, comp_map_, comm_map_, io_map_);
  coverage_.add(stg_, clusters, live_begin);

  if (opts_.record_eval_pairs) {
    // Map each labelled computation fragment to its cluster's stable id.
    for (const Cluster& c : clusters.clusters) {
      if (c.kind != FragmentKind::kComputation) continue;
      const std::uint64_t label = baseline_.key_of(c);
      for (std::size_t idx : c.members) {
        if (idx < live_begin) continue;
        const Fragment& f = stg_.fragment(idx);
        if (f.truth_class < 0) continue;
        eval_truth_.push_back(static_cast<int>(f.truth_class % 1000000007));
        eval_predicted_.push_back(static_cast<int>(label % 1000000007));
      }
    }
  }

  if (opts_.run_diagnosis) diagnoser_.feed(stg_, clusters, live_begin);
  if (opts_.window_observer) opts_.window_observer(stg_, clusters);

  stg_.clear_fragments();
  ++windows_;
}

std::vector<VarianceRegion> AnalysisServer::locate(FragmentKind kind) const {
  switch (kind) {
    case FragmentKind::kComputation:
      return find_variance_regions(comp_map_, opts_.variance_threshold);
    case FragmentKind::kCommunication:
      return find_variance_regions(comm_map_, opts_.variance_threshold);
    case FragmentKind::kIo:
      return find_variance_regions(io_map_, opts_.variance_threshold);
  }
  return {};
}

stats::VMeasure AnalysisServer::clustering_quality() const {
  return stats::v_measure(eval_truth_, eval_predicted_);
}

}  // namespace vapro::core
