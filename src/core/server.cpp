#include "src/core/server.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/obs/exposition.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/span.hpp"
#include "src/testing/fault.hpp"
#include "src/util/check.hpp"

namespace vapro::core {

namespace {

constexpr FragmentKind kAllKinds[] = {FragmentKind::kComputation,
                                      FragmentKind::kCommunication,
                                      FragmentKind::kIo};
// Lap timer splitting process_window into the PipelineStats stages; every
// statement of the window body is charged to exactly one stage, so the
// per-stage times sum to the window's tool time.
class StageClock {
 public:
  explicit StageClock(util::Clock* clock)
      : clock_(clock ? clock : util::real_clock()),
        last_(clock_->now_seconds()) {}
  double lap() {
    const double now = clock_->now_seconds();
    const double s = now - last_;
    last_ = now;
    return s;
  }

 private:
  util::Clock* clock_;
  double last_;
};

DiagnosisOptions with_obs(DiagnosisOptions diag, obs::ObsContext* obs) {
  diag.obs = obs;
  return diag;
}
}  // namespace

AnalysisServer::AnalysisServer(int ranks, ServerOptions opts)
    : opts_(opts),
      ranks_(ranks),
      stg_(opts.stg_mode),
      baseline_(opts.cluster.threshold),
      comp_map_(ranks, opts.bin_seconds),
      comm_map_(ranks, opts.bin_seconds),
      io_map_(ranks, opts.bin_seconds),
      diagnoser_(opts.machine, with_obs(opts.diagnosis, opts.obs)) {
  VAPRO_CHECK(ranks > 0);
  VAPRO_CHECK(opts_.pipeline_depth >= 1);
  VAPRO_CHECK(opts_.analysis_threads >= 1);
  if (opts_.analysis_threads > 1)
    // One persistent intra-window pool for the whole server: clustering
    // and region growing fan out across its lanes instead of spawning
    // threads per window.
    workers_ = std::make_unique<util::WorkerPool>(
        static_cast<std::size_t>(opts_.analysis_threads), opts_.clock);
  if (opts_.pipeline_depth > 1)
    // depth d admits one window in flight on the worker plus d-1 queued.
    pipeline_ = std::make_unique<util::StageExecutor>(
        static_cast<std::size_t>(opts_.pipeline_depth - 1), opts_.clock);
  if (opts_.obs && opts_.live_detection) attach_live_routes();
}

AnalysisServer::~AnalysisServer() {
  // Stop the stage worker before anything it writes is torn down; queued
  // windows are still analyzed (StageExecutor drains on close).  The
  // shard pool goes second: the stage worker fans out through it.
  pipeline_.reset();
  workers_.reset();
  if (!opts_.obs || live_routes_.empty()) return;
  if (obs::ExpositionServer* http = opts_.obs->exposition())
    for (const std::string& path : live_routes_) http->remove_route(path);
}

void AnalysisServer::sync() const {
  if (!pipeline_) return;
  pipeline_->drain();
  publish_pipeline_gauges();
}

void AnalysisServer::attach_live_routes() {
  // The exposition server must already be started (CLIs call
  // start_exposition before constructing the session); handlers run on the
  // serve thread and synchronize with process_window via live_mu_ inside
  // the render methods.
  obs::ExpositionServer* http = opts_.obs->exposition();
  if (!http) return;
  http->add_route("/v1/heatmap", [this] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = render_heatmap_json();
    return r;
  });
  http->add_route("/v1/variance", [this] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = render_variance_json();
    return r;
  });
  http->add_route("/v1/latency", [this] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = render_latency_json();
    return r;
  });
  http->add_route("/v1/critical_path", [this] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = render_critical_path_json();
    return r;
  });
  live_routes_ = {"/v1/heatmap", "/v1/variance", "/v1/latency",
                  "/v1/critical_path"};
}

void AnalysisServer::refocus_diagnosis(std::optional<FocusRegion> focus) {
  // A restart must interleave with window analysis exactly as it would
  // serially: all admitted windows feed the old focus first.
  sync();
  diagnoser_.restart(std::move(focus));
}

void AnalysisServer::process_window(FragmentBatch batch, double drain_seconds) {
  obs::TraceRecorder* trace = opts_.obs ? opts_.obs->trace() : nullptr;
  util::Clock* clk = opts_.clock ? opts_.clock : util::real_clock();
  const double submit_seconds = clk->now_seconds();
  std::uint64_t flow_id = 0;
  if (trace) {
    // Producer-side drain slice ending at the hand-off, plus the flow
    // arrow the window span on the worker will consume — in Perfetto the
    // arrow's length IS the queue wait.
    const std::uint64_t now_ns = trace->now_ns();
    const auto drain_ns = static_cast<std::uint64_t>(drain_seconds * 1e9);
    trace->complete_span("stage.drain", "pipeline",
                         now_ns > drain_ns ? now_ns - drain_ns : 0, drain_ns);
    flow_id = trace->next_flow_id();
    trace->flow_start("window.handoff", "pipeline", flow_id, now_ns);
  }
  if (!pipeline_) {
    analyze_window(std::move(batch), drain_seconds, submit_seconds, flow_id);
    publish_pipeline_gauges();
    return;
  }
  // Hand the window to the analysis worker.  submit() blocks when
  // pipeline_depth windows are already admitted — that blocking IS the
  // backpressure: a fast producer is throttled to analysis pace instead of
  // queueing unbounded windows.
  const bool degrade =
      VAPRO_FAULT("pipeline.handoff") == testing::FaultAction::kFail;
  auto shared = std::make_shared<FragmentBatch>(std::move(batch));
  pipeline_->submit([this, shared, drain_seconds, submit_seconds, flow_id] {
    analyze_window(std::move(*shared), drain_seconds, submit_seconds, flow_id);
  });
  if (degrade) {
    // Injected hand-off failure: fall back to synchronous operation for
    // this window.  The job still runs on the worker (keeping FIFO order),
    // we just wait for it — lossless and output-identical, only the
    // overlap is gone.
    ++handoff_faults_;
    pipeline_->drain();
  }
  publish_pipeline_gauges();
}

void AnalysisServer::publish_pipeline_gauges() const {
  obs::ObsContext* obs = opts_.obs;
  if (!obs || (!pipeline_ && !workers_)) return;
  obs::MetricsRegistry& m = obs->metrics();
  if (pipeline_) {
    m.gauge("vapro.pipeline.queue_depth")
        ->set(static_cast<double>(pipeline_->depth()));
    m.gauge("vapro.pipeline.stall_seconds")->set(pipeline_->stall_seconds());
    // Wait-time attribution: producer-block vs consumer-idle vs queued
    // time.
    m.gauge("vapro.pipeline.producer_block_seconds")
        ->set(pipeline_->stall_seconds());
    m.gauge("vapro.pipeline.consumer_idle_seconds")
        ->set(pipeline_->idle_seconds());
    m.gauge("vapro.pipeline.handoff_wait_seconds")
        ->set(pipeline_->handoff_seconds());
    // Stage occupancy: cumulative busy seconds of the analysis worker; the
    // scraper divides by wall time for utilization.
    m.gauge("vapro.pipeline.analysis_busy_seconds")
        ->set(pipeline_->busy_seconds());
  }
  if (workers_) {
    // Intra-window shard pool occupancy.  Imbalance is max/mean lane busy
    // time: ≈1 means the atomic-claim balancing kept lanes even, ≫1 means
    // one giant edge serialized the fan-out.
    const std::vector<double> busy = workers_->lane_busy_seconds();
    double total = 0.0, peak = 0.0;
    for (double b : busy) {
      total += b;
      peak = std::max(peak, b);
    }
    const double mean = busy.empty() ? 0.0 : total / busy.size();
    m.gauge("vapro.pipeline.shards")
        ->set(static_cast<double>(workers_->lanes()));
    m.gauge("vapro.pipeline.shard_busy_seconds")->set(total);
    m.gauge("vapro.pipeline.shard_busy_seconds_max")->set(peak);
    m.gauge("vapro.pipeline.shard_imbalance")
        ->set(mean > 0.0 ? peak / mean : 1.0);
    m.gauge("vapro.pipeline.shard_idle_seconds")
        ->set(workers_->idle_seconds());
    m.gauge("vapro.pipeline.shard_tasks_total")
        ->set(static_cast<double>(workers_->tasks_run()));
  }
}

PipelineBreakdown AnalysisServer::pipeline_breakdown() const {
  sync();
  PipelineBreakdown b;
  b.analysis_busy_seconds = analysis_busy_seconds_;
  if (pipeline_) {
    b.queue_stall_seconds = pipeline_->stall_seconds();
    b.queue_stalls = pipeline_->stalls();
    b.consumer_idle_seconds = pipeline_->idle_seconds();
    b.consumer_idle_waits = pipeline_->idle_waits();
    b.handoff_wait_seconds = pipeline_->handoff_seconds();
  }
  if (workers_) {
    b.shard_lanes = workers_->lanes();
    b.shard_busy_seconds = workers_->lane_busy_seconds();
    b.shard_tasks = workers_->lane_task_counts();
    b.shard_idle_seconds = workers_->idle_seconds();
    b.shard_runs = workers_->runs();
  }
  return b;
}

void AnalysisServer::analyze_window(FragmentBatch batch, double drain_seconds,
                                    double submit_seconds,
                                    std::uint64_t flow_id) {
  obs::ObsContext* obs = opts_.obs;
  obs::TraceRecorder* trace = obs ? obs->trace() : nullptr;
  obs::Journal* journal = obs ? obs->journal() : nullptr;
  obs::Counter* spans_dropped =
      trace && obs ? obs->metrics().counter("vapro.obs.spans_dropped_total")
                   : nullptr;
  obs::ToolTimeScope tool_time(obs ? &obs->overhead() : nullptr);
  // Exposition handlers read the maps/regions from the serve thread; the
  // whole window body runs under the live mutex.
  std::lock_guard<std::mutex> live_lock(live_mu_);
  // The window span consumes the producer's handoff flow arrow, so the
  // queue hop is visible in the timeline; stage spans nest inside it.
  obs::SpanScope window_span({trace, nullptr, spans_dropped, flow_id},
                             "analysis.window", "server");
  StageClock clock(opts_.clock);
  const double queue_wait =
      (opts_.clock ? opts_.clock : util::real_clock())->now_seconds() -
      submit_seconds;

  obs::PipelineStats stats;
  stats.window = windows_;
  stats.fragments_drained = batch.fragments.size();
  stats.new_states = batch.new_states.size();
  stats.drain_seconds = drain_seconds;
  stats.queue_wait_seconds = queue_wait > 0.0 ? queue_wait : 0.0;

  // --- stage: STG growth (vertex/edge ingestion + carry management) ---
  obs::SpanScope stg_span({trace, nullptr, spans_dropped}, "stage.stg",
                          "server");
  for (const sim::InvocationInfo& info : batch.new_states)
    stg_.touch_vertex(info);
  // Carry-ins from the previous window's tail enter the STG first so
  // indices below `live_begin` are exactly the carried fragments.
  const std::size_t live_begin = overlap_carry_.size();
  for (const Fragment& f : overlap_carry_) stg_.add_fragment(f);
  overlap_carry_.clear();
  // One contiguous scan of the end-time column finds the window end, the
  // overlap cut selects next window's carry candidates, and then the whole
  // batch is adopted into the STG — an arena swap when there is no carry
  // (the steady state), never a per-fragment copy.
  const std::size_t drained = batch.fragments.size();
  const double* ends = batch.fragments.end_data();
  double window_end = 0.0;
  for (std::size_t i = 0; i < drained; ++i)
    window_end = std::max(window_end, ends[i]);
  if (opts_.window_overlap_seconds > 0.0) {
    const double cut = window_end - opts_.window_overlap_seconds;
    for (std::size_t i = 0; i < drained; ++i)
      if (ends[i] >= cut)
        overlap_carry_.push_back(batch.fragments.materialize(i));
  }
  stg_.adopt_fragments(std::move(batch.fragments));
  fragments_ += drained;
  stats.carry_ins = live_begin;
  stats.virtual_time = window_end;
  last_virtual_time_ = std::max(last_virtual_time_, window_end);
  stats.stg_seconds = clock.lap();
  stg_span.finish();

  // --- stage: clustering (Algorithm 1 workers + rare-path scan) ---
  obs::SpanScope cluster_span({trace, nullptr, spans_dropped}, "stage.cluster",
                              "server");
  ClusterSeedCache* cache = opts_.cluster_seed_cache ? &seed_cache_ : nullptr;
  if (cache && VAPRO_FAULT("pipeline.cache") == testing::FaultAction::kFail)
    // Injected cache loss: drop every carried seed and re-cluster this
    // window from scratch.  The site fires on the analysis path in both
    // serial and pipelined modes, so equivalence holds under a fault plan.
    seed_cache_.invalidate();
  util::WorkerPool* pool = workers_.get();
  if (pool && VAPRO_FAULT("pipeline.shard") == testing::FaultAction::kFail) {
    // Injected worker-task failure.  The decision is made HERE, once per
    // window on the analysis thread — never inside a parallel task, where
    // which-task-hits-it would depend on scheduling.  One poisoned task
    // exercises the pool's exception containment, then the whole window
    // degrades to serial fan-out: byte-identical output (sharding is
    // equivalence-preserving by design), only the intra-window overlap is
    // lost.  Degrading BEFORE the real fan-out also keeps the seed cache
    // single-update: no entry is touched twice for one window.
    ++shard_faults_;
    pool->run(1, [](std::size_t, std::size_t) {
      testing::FaultInjector::throw_if(testing::FaultAction::kThrow,
                                       "pipeline.shard");
    });
    pool = nullptr;
  }
  stats.cluster_shards = pool ? pool->lanes() : 1;
  ClusteringResult clusters =
      cluster_stg_parallel(stg_, opts_.cluster, pool, trace, cache);
  cluster_span.add_arg(obs::TraceRecorder::arg(
      "clusters", static_cast<std::uint64_t>(clusters.clusters.size())));
  cluster_span.add_arg(obs::TraceRecorder::arg(
      "shards", static_cast<std::uint64_t>(stats.cluster_shards)));
  rare_clusters_ += clusters.rare_count();

  // Algorithm 1 line 8: surface rare-but-expensive execution paths
  // (carry-ins were reported by the previous window already).
  const std::size_t rare_before = rare_findings_.size();
  for (const Cluster& c : clusters.clusters) {
    if (!c.rare) continue;
    RareFinding finding;
    finding.kind = c.kind;
    double first_start = 1e300;
    for (std::size_t idx : c.members) {
      if (idx < live_begin) continue;
      const FragmentView f = stg_.fragment(idx);
      ++finding.executions;
      finding.total_seconds += f.duration();
      finding.longest_seconds = std::max(finding.longest_seconds, f.duration());
      first_start = std::min(first_start, f.start_time());
    }
    if (finding.total_seconds < opts_.rare_report_min_seconds) continue;
    finding.state = c.kind == FragmentKind::kComputation
                        ? stg_.state_name(c.from) + " -> " + stg_.state_name(c.to)
                        : stg_.state_name(c.to);
    finding.window_start = first_start;
    rare_findings_.push_back(std::move(finding));
  }
  if (journal) {
    // Journal each new finding before the report list is sorted/truncated;
    // the journal is the complete record, the list the user-facing top-N.
    for (std::size_t i = rare_before; i < rare_findings_.size(); ++i) {
      const RareFinding& f = rare_findings_[i];
      journal->emit(
          "rare_finding", static_cast<std::int64_t>(stats.window),
          f.window_start,
          {obs::JournalField::str("state", f.state),
           obs::JournalField::str("kind", fragment_kind_name(f.kind)),
           obs::JournalField::num("executions",
                                  static_cast<std::uint64_t>(f.executions)),
           obs::JournalField::num("total_seconds", f.total_seconds),
           obs::JournalField::num("longest_seconds", f.longest_seconds)});
    }
  }
  if (rare_findings_.size() > opts_.rare_report_limit) {
    std::sort(rare_findings_.begin(), rare_findings_.end(),
              [](const RareFinding& a, const RareFinding& b) {
                return a.total_seconds > b.total_seconds;
              });
    rare_findings_.resize(opts_.rare_report_limit);
  }
  stats.clusters_formed = clusters.clusters.size();
  stats.rare_clusters = clusters.rare_count();
  stats.cluster_seconds = clock.lap();
  cluster_span.finish();

  // --- stage: normalization against the cross-window baseline ---
  obs::SpanScope normalize_span({trace, nullptr, spans_dropped},
                                "stage.normalize", "server");
  ClusterBaseline* baseline =
      opts_.shared_baseline ? opts_.shared_baseline : &baseline_;
  std::vector<NormalizedFragment> normalized =
      normalize_fragments(stg_, clusters, baseline, live_begin);

  if (opts_.record_eval_pairs) {
    // Map each labelled computation fragment to its cluster's stable id.
    for (const Cluster& c : clusters.clusters) {
      if (c.kind != FragmentKind::kComputation) continue;
      const std::uint64_t label = baseline_.key_of(c);
      for (std::size_t idx : c.members) {
        if (idx < live_begin) continue;
        const FragmentView f = stg_.fragment(idx);
        if (f.truth_class() < 0) continue;
        eval_truth_.push_back(static_cast<int>(f.truth_class() % 1000000007));
        eval_predicted_.push_back(static_cast<int>(label % 1000000007));
      }
    }
  }
  stats.normalize_seconds = clock.lap();
  normalize_span.finish();

  // --- stage: heat-map deposit + coverage accounting ---
  {
    obs::SpanScope deposit_span({trace, nullptr, spans_dropped},
                                "stage.deposit", "server");
    deposit_fragments(normalized, comp_map_, comm_map_, io_map_);
    coverage_.add(stg_, clusters, live_begin);
    stats.deposit_seconds = clock.lap();
  }

  // --- stage: progressive diagnosis + observer hooks ---
  {
    obs::SpanScope diagnose_span({trace, nullptr, spans_dropped},
                                 "stage.diagnose", "server");
    if (opts_.run_diagnosis) diagnoser_.feed(stg_, clusters, live_begin);
    if (opts_.window_observer) opts_.window_observer(stg_, clusters);

    stg_.clear_fragments();
    ++windows_;
    stats.diagnosis_stage = diagnoser_.stage();
    stats.diagnose_seconds = clock.lap();
  }

  // --- stage: publish (region growing, health gauges, journal events) ---
  if (obs && opts_.live_detection) {
    obs::SpanScope publish_span({trace, nullptr, spans_dropped},
                                "stage.publish", "server");
    if (VAPRO_FAULT("server.window") == testing::FaultAction::kFail)
      // Live publish lost for this window (journal/gauges skip a beat);
      // the final journal_detection_snapshot still recovers every region.
      ++publish_faults_;
    else
      publish_detection(stats, pool);
  }
  stats.publish_seconds = clock.lap();
  // Everything but the producer-side drain is analysis-stage occupancy.
  analysis_busy_seconds_ += stats.total_seconds() - stats.drain_seconds;

  // Fold this window into the critical-path reducer: "window N was bound
  // by stage X for Y ms".  Tracked always; journaled (as a measurement
  // event, distinct from detection conclusions) when live detection is on.
  obs::WindowLatencyRecord latency_record;
  latency_record.window = static_cast<std::int64_t>(stats.window);
  latency_record.virtual_time = stats.virtual_time;
  latency_record.stage_seconds = {
      stats.queue_wait_seconds, stats.drain_seconds,    stats.stg_seconds,
      stats.cluster_seconds,    stats.normalize_seconds, stats.deposit_seconds,
      stats.diagnose_seconds,   stats.publish_seconds};
  latency_.record(latency_record);
  if (journal && opts_.live_detection)
    obs::journal_window_latency(*journal, latency_record);

  if (obs) {
    obs::MetricsRegistry& m = obs->metrics();
    m.counter("vapro.server.windows_total")->inc();
    m.counter("vapro.server.fragments_total")->inc(stats.fragments_drained);
    m.counter("vapro.server.carry_ins_total")->inc(stats.carry_ins);
    m.counter("vapro.server.clusters_total")->inc(stats.clusters_formed);
    m.counter("vapro.server.rare_clusters_total")->inc(stats.rare_clusters);
    m.gauge("vapro.server.diagnosis_stage")
        ->set(static_cast<double>(stats.diagnosis_stage));
    m.histogram("vapro.server.window_seconds")->record(stats.total_seconds());
    m.histogram("vapro.server.queue_wait_seconds")
        ->record(stats.queue_wait_seconds);
    m.histogram("vapro.server.stage.drain_seconds")
        ->record(stats.drain_seconds);
    m.histogram("vapro.server.stage.stg_seconds")->record(stats.stg_seconds);
    m.histogram("vapro.server.stage.cluster_seconds")
        ->record(stats.cluster_seconds);
    m.histogram("vapro.server.stage.normalize_seconds")
        ->record(stats.normalize_seconds);
    m.histogram("vapro.server.stage.deposit_seconds")
        ->record(stats.deposit_seconds);
    m.histogram("vapro.server.stage.diagnose_seconds")
        ->record(stats.diagnose_seconds);
    m.histogram("vapro.server.stage.publish_seconds")
        ->record(stats.publish_seconds);
    obs->emit_window(stats);
    window_span.add_arg(obs::TraceRecorder::arg(
        "window", static_cast<std::uint64_t>(stats.window)));
    window_span.add_arg(obs::TraceRecorder::arg(
        "fragments", static_cast<std::uint64_t>(stats.fragments_drained)));
    window_span.add_arg(obs::TraceRecorder::arg(
        "clusters", static_cast<std::uint64_t>(stats.clusters_formed)));
    window_span.add_arg(
        obs::TraceRecorder::arg("bound_by", latency_record.bound_by()));
  }
}

void AnalysisServer::publish_detection(const obs::PipelineStats& stats,
                                       util::WorkerPool* pool) {
  obs::ObsContext* obs = opts_.obs;
  const Heatmap* maps[3] = {&comp_map_, &comm_map_, &io_map_};
  std::vector<VarianceRegion> regions[3];
  for (FragmentKind kind : kAllKinds)
    regions[static_cast<int>(kind)] = locate_locked(kind, pool);
  const DetectionHealth health = detection_health(maps, regions, coverage_);
  publish_health_gauges(obs->metrics(), health);

  obs::Journal* journal = obs->journal();
  if (!journal) return;
  const std::int64_t window = static_cast<std::int64_t>(stats.window);
  for (FragmentKind kind : kAllKinds)
    region_journal_.emit(*journal, kind, regions[static_cast<int>(kind)],
                         window, stats.virtual_time, opts_.bin_seconds,
                         /*final_snapshot=*/false);
  journal_window_event(
      *journal, window, stats.virtual_time, health,
      {obs::JournalField::num(
           "fragments", static_cast<std::uint64_t>(stats.fragments_drained)),
       obs::JournalField::num("carry_ins",
                              static_cast<std::uint64_t>(stats.carry_ins)),
       obs::JournalField::num(
           "clusters", static_cast<std::uint64_t>(stats.clusters_formed)),
       obs::JournalField::num(
           "rare_clusters", static_cast<std::uint64_t>(stats.rare_clusters)),
       obs::JournalField::num(
           "diagnosis_stage",
           static_cast<std::int64_t>(stats.diagnosis_stage))});
}

void AnalysisServer::journal_detection_snapshot() const {
  obs::Journal* journal = opts_.obs ? opts_.obs->journal() : nullptr;
  if (!journal) return;
  sync();  // the snapshot must cover every admitted window
  std::lock_guard<std::mutex> lock(live_mu_);
  const std::int64_t window =
      windows_ ? static_cast<std::int64_t>(windows_) - 1 : -1;
  for (FragmentKind kind : kAllKinds)
    region_journal_.emit(*journal, kind, locate_locked(kind, workers_.get()),
                         window, last_virtual_time_, opts_.bin_seconds,
                         /*final_snapshot=*/true);
  // Terminal critical-path verdict: one event carrying the per-stage
  // totals, so the replay can cross-check its fold of the per-window
  // window_latency events.  Measurement events follow the same
  // live_detection gate as the per-window ones.
  if (opts_.live_detection)
    obs::journal_critical_path(*journal, window, last_virtual_time_,
                               latency_.summary());
  journal->flush();
}

std::string AnalysisServer::render_latency_json() const {
  // The tracker has its own mutex; no sync() — a mid-run scrape just sees
  // the windows analyzed so far, like the other /v1 views.
  return obs::render_latency_json(latency_.recent(), latency_.summary());
}

std::string AnalysisServer::render_critical_path_json() const {
  return obs::render_critical_path_json(latency_.recent(), latency_.summary());
}

std::string AnalysisServer::render_heatmap_json() const {
  std::lock_guard<std::mutex> lock(live_mu_);
  const Heatmap* maps[3] = {&comp_map_, &comm_map_, &io_map_};
  return core::render_heatmap_json(maps, ranks_, opts_.bin_seconds);
}

std::string AnalysisServer::render_variance_json() const {
  std::lock_guard<std::mutex> lock(live_mu_);
  std::vector<VarianceRegion> regions[3];
  for (FragmentKind kind : kAllKinds)
    regions[static_cast<int>(kind)] = locate_locked(kind, workers_.get());
  return core::render_variance_json(regions, windows_, last_virtual_time_,
                                    opts_.bin_seconds,
                                    opts_.variance_threshold);
}

std::vector<VarianceRegion> AnalysisServer::locate(FragmentKind kind) const {
  // Sync so the regions reflect every admitted window, then lock so a
  // concurrent scrape or (in a group) sibling publish sees whole windows.
  sync();
  std::lock_guard<std::mutex> lock(live_mu_);
  return locate_locked(kind, workers_.get());
}

std::vector<VarianceRegion> AnalysisServer::locate_locked(
    FragmentKind kind, util::WorkerPool* pool) const {
  switch (kind) {
    case FragmentKind::kComputation:
      return find_variance_regions(comp_map_, opts_.variance_threshold, pool);
    case FragmentKind::kCommunication:
      return find_variance_regions(comm_map_, opts_.variance_threshold, pool);
    case FragmentKind::kIo:
      return find_variance_regions(io_map_, opts_.variance_threshold, pool);
  }
  return {};
}

stats::VMeasure AnalysisServer::clustering_quality() const {
  sync();
  return stats::v_measure(eval_truth_, eval_predicted_);
}

}  // namespace vapro::core
