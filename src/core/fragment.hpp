// Fragments — the unit of Vapro's analysis.
//
// A fragment is one execution of a code snippet (paper §2): either the
// computation between two external invocations (attached to an STG edge) or
// one invocation itself (attached to an STG vertex).  Each carries the
// runtime information §3.3 collects: elapsed time, invocation arguments,
// and the counter deltas visible through the currently configured PMU set.
#pragma once

#include <cstdint>
#include <vector>

#include "src/pmu/counters.hpp"
#include "src/sim/intercept.hpp"

namespace vapro::core {

// Hashed running-state identity (call-site for context-free STG, call-path
// hash for context-aware).  0 is reserved for "program start".
using StateKey = std::uint64_t;
inline constexpr StateKey kStartState = 0;

enum class FragmentKind : std::uint8_t {
  kComputation,   // STG edge
  kCommunication, // STG vertex, comm invocation
  kIo,            // STG vertex, IO invocation
};

const char* fragment_kind_name(FragmentKind k);

struct Fragment {
  FragmentKind kind = FragmentKind::kComputation;
  sim::RankId rank = 0;
  // Edge fragments: state transition from `from` to `to`.
  // Vertex fragments: `to` is the vertex, `from` unused (= to).
  StateKey from = kStartState;
  StateKey to = kStartState;
  double start_time = 0.0;
  double end_time = 0.0;
  // Counter deltas as seen through the tool's CounterSet (jittered;
  // inactive counters are zero).  Meaningful for computation fragments.
  pmu::CounterSample counters;
  // Invocation arguments (vertex fragments).
  sim::CommArgs args;
  sim::OpKind op = sim::OpKind::kProbe;
  // Ground-truth workload class for evaluation (Table 2).  Not consulted
  // by any detection/diagnosis code path.
  std::int64_t truth_class = -1;

  double duration() const { return end_time - start_time; }
};

// The workload vector of §3.4: normalized metrics and/or invocation
// arguments, clustered per STG edge/vertex to find fixed workload.
struct WorkloadVector {
  std::vector<double> dims;

  double norm() const;
  double distance(const WorkloadVector& other) const;
};

// Builds the workload vector for a fragment:
//  - computation: the configured proxy metrics (default: TOT_INS, §3.3);
//  - communication: message size, peer, op kind;
//  - IO: data size, file descriptor, op kind (read/write mode).
WorkloadVector make_workload_vector(const Fragment& f,
                                    const std::vector<pmu::Counter>& proxies);

// Field-wise flavors of the same definition, shared by the AoS overload
// above, the FragmentView overload (src/core/columns.hpp), and the
// clustering hot path, which writes dims straight into a flat column
// instead of per-fragment vectors.  Keeping one definition here is what
// guarantees the SoA layout clusters byte-identically to the AoS one.
std::size_t workload_dim_count(FragmentKind kind, std::size_t proxy_count);
// Writes exactly workload_dim_count(kind, proxies.size()) doubles to `out`.
void write_workload_dims(FragmentKind kind, const pmu::CounterSample& counters,
                         const sim::CommArgs& args, sim::OpKind op,
                         const std::vector<pmu::Counter>& proxies, double* out);

}  // namespace vapro::core
