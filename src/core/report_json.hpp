// JSON serialization of session results for CI pipelines and dashboards.
// Emits a single self-contained document: run metadata, per-category
// variance regions, coverage, rare findings, and the diagnosis tree walk.
#pragma once

#include <string>

#include "src/core/vapro.hpp"

namespace vapro::core {

// Serializes the session result.  `total_execution_seconds` feeds the
// coverage figure (pass 0 to omit it).
std::string report_json(const VaproSession& session,
                        double total_execution_seconds = 0.0);

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

}  // namespace vapro::core
