#include "src/core/client.hpp"

#include <algorithm>

#include "src/testing/fault.hpp"
#include "src/util/check.hpp"

namespace vapro::core {

namespace {
bool is_power_of_two(std::uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

VaproClient::VaproClient(int ranks, ClientOptions opts) : opts_(opts) {
  VAPRO_CHECK(ranks > 0);
  util::Rng seeder(opts.seed ^ 0x5eed5eed5eed5eedULL);
  ranks_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    ranks_.emplace_back(seeder.fork(static_cast<std::uint64_t>(r)).next_u64(),
                        opts.pmu_budget, opts.pmu_jitter);
  }
}

bool VaproClient::should_record(RankState& rs, sim::CallSiteId site) {
  if (opts_.sampling == SamplingPolicy::kNone) return true;
  RankState::SiteStats& stats = rs.sites[site];
  const std::uint64_t n = ++stats.count;
  if (n <= static_cast<std::uint64_t>(opts_.sampling_warmup)) return true;
  switch (opts_.sampling) {
    case SamplingPolicy::kBackoff:
      return is_power_of_two(n);
    case SamplingPolicy::kSkipShort:
      // Long fragments are always recorded; short ones are decimated.
      if (stats.mean_span >= opts_.short_threshold_seconds) return true;
      return n % static_cast<std::uint64_t>(opts_.short_keep_one_in) == 0;
    case SamplingPolicy::kNone:
      break;
  }
  return true;
}

void VaproClient::account(const Fragment& f) {
  ++fragments_recorded_;
  // Rough wire size: fixed header + active counter payload + path.
  bytes_recorded_ += 56 + 8 * pmu::kCounterCount / 4;
  (void)f;
}

void VaproClient::on_call_begin(const sim::InvocationInfo& info, double time,
                                const pmu::CounterSample& ground_truth) {
  // Everything inside an interception hook is tool time (Table 1's
  // overhead column).  Hooks fire for every fragment boundary, so the
  // accountant samples here instead of paying two clock reads per call.
  obs::SampledToolTimeScope tool_time(opts_.obs ? &opts_.obs->overhead()
                                                : nullptr);
  RankState& rs = ranks_[static_cast<std::size_t>(info.rank)];
  ++invocations_seen_;
  rs.record_current = should_record(rs, info.site);
  if (!rs.record_current) {
    ++sampled_out_;
    rs.begin_time = time;
    return;
  }

  const StateKey key = make_state_key(opts_.stg_mode, info);
  if (announced_.insert(key).second) buffer_.new_states.push_back(info);

  // Computation fragment: previous call end → this call begin.
  Fragment comp;
  comp.kind = FragmentKind::kComputation;
  comp.rank = info.rank;
  comp.from = rs.has_last ? rs.last_state : kStartState;
  comp.to = key;
  comp.start_time = rs.last_end_time;
  comp.end_time = time;
  comp.counters = rs.counters.read_delta(rs.last_gt, ground_truth);
  comp.truth_class = info.truth_class_since_last;
  account(comp);
  if (VAPRO_FAULT("client.ingest") == testing::FaultAction::kDrop)
    ++ingest_faults_;  // record lost before reaching the buffer
  else
    buffer_.fragments.push_back(std::move(comp));

  rs.begin_time = time;
}

void VaproClient::on_call_end(const sim::InvocationInfo& info, double time,
                              const pmu::CounterSample& ground_truth) {
  obs::SampledToolTimeScope tool_time(opts_.obs ? &opts_.obs->overhead()
                                                : nullptr);
  RankState& rs = ranks_[static_cast<std::size_t>(info.rank)];
  const StateKey key = make_state_key(opts_.stg_mode, info);

  if (rs.record_current && info.kind != sim::OpKind::kProbe) {
    // The invocation itself: a vertex fragment with its arguments.
    Fragment inv;
    inv.kind = sim::is_io_op(info.kind) ? FragmentKind::kIo
                                        : FragmentKind::kCommunication;
    inv.rank = info.rank;
    inv.from = key;
    inv.to = key;
    inv.start_time = rs.begin_time;
    inv.end_time = time;
    // With an enhanced profiling layer (§3.3) the library exposes the true
    // transfer time; use it instead of the wait-inflated elapsed time.
    if (info.args.transfer_seconds >= 0.0) {
      inv.end_time = inv.start_time +
                     std::min(time - rs.begin_time, info.args.transfer_seconds);
    }
    inv.args = info.args;
    inv.op = info.kind;
    account(inv);
    if (VAPRO_FAULT("client.ingest") == testing::FaultAction::kDrop)
      ++ingest_faults_;
    else
      buffer_.fragments.push_back(std::move(inv));
  }

  // Update the per-site span statistic (previous call end → this call end)
  // driving the skip-short sampling heuristic.
  if (opts_.sampling == SamplingPolicy::kSkipShort && rs.has_last) {
    RankState::SiteStats& stats = rs.sites[info.site];
    const double span = time - rs.last_end_time;
    const std::uint64_t n = std::max<std::uint64_t>(1, stats.count);
    stats.mean_span += (span - stats.mean_span) / static_cast<double>(n);
  }

  rs.has_last = true;
  rs.last_state = key;
  rs.last_end_time = time;
  rs.last_gt = ground_truth;
}

void VaproClient::on_program_end(sim::RankId rank, double time) {
  (void)rank;
  (void)time;
  // The tail computation after the last external call is not observable
  // through interception — same blind spot as the real tool.
}

namespace {
std::string counter_list(const std::vector<pmu::Counter>& counters) {
  std::string out;
  for (pmu::Counter c : counters) {
    if (!out.empty()) out += ", ";
    out += std::string(pmu::counter_name(c));
  }
  return out;
}
}  // namespace

bool VaproClient::configure_counters(
    const std::vector<pmu::Counter>& programmable) {
  obs::ToolTimeScope tool_time(opts_.obs ? &opts_.obs->overhead() : nullptr);
  // Validate against the budget once, then apply everywhere.
  for (RankState& rs : ranks_) {
    if (!rs.counters.configure(programmable)) {
      if (opts_.obs)
        opts_.obs->metrics()
            .counter("vapro.client.reprogram_rejected")
            ->inc();
      return false;
    }
  }
  if (opts_.obs) {
    opts_.obs->metrics().counter("vapro.client.reprograms")->inc();
    if (auto* trace = opts_.obs->trace()) {
      trace->instant("pmu.reprogram", "client",
                     {obs::TraceRecorder::arg("counters",
                                              counter_list(programmable))});
    }
    journal_reprogram(counter_list(programmable), /*multiplexed=*/false,
                      programmable.size());
  }
  return true;
}

void VaproClient::configure_counters_multiplexed(
    const std::vector<pmu::Counter>& programmable) {
  obs::ToolTimeScope tool_time(opts_.obs ? &opts_.obs->overhead() : nullptr);
  for (RankState& rs : ranks_) rs.counters.configure_multiplexed(programmable);
  if (opts_.obs) {
    opts_.obs->metrics().counter("vapro.client.reprograms_multiplexed")->inc();
    if (auto* trace = opts_.obs->trace()) {
      trace->instant("pmu.reprogram_multiplexed", "client",
                     {obs::TraceRecorder::arg("counters",
                                              counter_list(programmable))});
    }
    journal_reprogram(counter_list(programmable), /*multiplexed=*/true,
                      programmable.size());
  }
}

void VaproClient::journal_reprogram(const std::string& counters,
                                    bool multiplexed, std::size_t slots) {
  obs::Journal* journal = opts_.obs ? opts_.obs->journal() : nullptr;
  if (!journal) return;
  // The session retries the same counter set every window; only an actual
  // change of programming is an event.
  const std::string key = (multiplexed ? "mux:" : "") + counters;
  if (key == journaled_counters_) return;
  journaled_counters_ = key;
  journal->emit("pmu_reprogram", -1, 0.0,
                {obs::JournalField::str("counters", counters),
                 obs::JournalField::boolean("multiplexed", multiplexed),
                 obs::JournalField::num("slots",
                                        static_cast<std::uint64_t>(slots))});
}

void VaproClient::publish_metrics_locked() {
  if (!opts_.obs) return;
  obs::MetricsRegistry& m = opts_.obs->metrics();
  m.counter("vapro.client.fragments_total")
      ->inc(fragments_recorded_ - published_fragments_);
  m.counter("vapro.client.bytes_total")->inc(bytes_recorded_ - published_bytes_);
  m.counter("vapro.client.invocations_total")
      ->inc(invocations_seen_ - published_invocations_);
  m.counter("vapro.client.invocations_sampled_out")
      ->inc(sampled_out_ - published_sampled_out_);
  published_fragments_ = fragments_recorded_;
  published_bytes_ = bytes_recorded_;
  published_invocations_ = invocations_seen_;
  published_sampled_out_ = sampled_out_;
}

FragmentBatch VaproClient::drain() {
  obs::ToolTimeScope tool_time(opts_.obs ? &opts_.obs->overhead() : nullptr);
  FragmentBatch out = std::move(buffer_);
  buffer_ = FragmentBatch{};
  // Registry counters advance once per window, not once per intercepted
  // call — the hot path stays registry-free.
  publish_metrics_locked();
  return out;
}

}  // namespace vapro::core
