// The Vapro analysis server (paper Fig 2 steps 4–6, Fig 8).
//
// Consumes fragment batches drained from clients at the end of each
// analysis window, grows the STG, clusters fragments (multi-threaded across
// STG edges/vertices), normalizes performance against a cross-window
// baseline, deposits the result into per-category heat maps, accumulates
// coverage, drives the progressive diagnoser, and — when evaluation mode is
// on — records (truth class, stable cluster id) pairs for V-measure scoring
// (Table 2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/client.hpp"
#include "src/core/clustering.hpp"
#include "src/core/detection.hpp"
#include "src/core/diagnosis.hpp"
#include "src/core/heatmap.hpp"
#include "src/core/live_export.hpp"
#include "src/core/stg.hpp"
#include "src/obs/context.hpp"
#include "src/obs/latency.hpp"
#include "src/stats/vmeasure.hpp"
#include "src/util/clock.hpp"
#include "src/util/pipeline.hpp"

namespace vapro::core {

struct ServerOptions {
  StgMode stg_mode = StgMode::kContextFree;
  ClusterOptions cluster;
  DiagnosisOptions diagnosis;
  pmu::MachineParams machine;
  double variance_threshold = 0.85;  // heat-map region growing (§3.5)
  double bin_seconds = 0.25;
  // Overlapping analysis windows (Fig 8): fragments from the last
  // `window_overlap_seconds` of each window are carried into the next so
  // clusters spanning a boundary still find their twins (minima, the
  // min-cluster-size cut).  Carry-ins never double-count in the heat map,
  // coverage, diagnosis, or evaluation pairs.
  double window_overlap_seconds = 0.0;
  int analysis_threads = 1;          // the "multiple servers" of §5
  // Staged concurrent pipeline (§5 overlap): how many windows may be
  // admitted past process_window() before the caller blocks.  1 = fully
  // synchronous (the seed behavior); d > 1 hands each window to a single
  // analysis worker thread and lets the caller drain window N+1 while
  // window N clusters/detects/diagnoses.  One worker in strict FIFO order
  // keeps every output byte-identical to depth 1 — only the overlap
  // changes, never the results.  See docs/ARCHITECTURE.md.
  int pipeline_depth = 1;
  // Cross-window cluster-seed cache: carry each edge/vertex's norm-sorted
  // cluster seeds forward so steady-state windows attach fragments to last
  // window's seeds instead of re-deriving them.  Changes which fragment
  // seeds each cluster (deterministically), so it is opt-in.
  bool cluster_seed_cache = false;
  bool run_diagnosis = true;
  bool record_eval_pairs = false;    // Table 2 scoring
  // Rare-path reporting (Algorithm 1 line 8): clusters with too few
  // fragments whose total time exceeds this are surfaced to the user.
  double rare_report_min_seconds = 0.02;
  std::size_t rare_report_limit = 64;
  // Invoked after each window is clustered, before fragments are dropped —
  // visualization/experiment hooks read raw per-fragment data here.
  std::function<void(const Stg&, const ClusteringResult&)> window_observer;
  // When set, normalization minima live in this externally owned baseline
  // instead of a per-server one — sharing it across executions compares
  // each run against the best twin ever seen (between-executions variance,
  // §1).  Must outlive the server.
  ClusterBaseline* shared_baseline = nullptr;
  // Self-telemetry (src/obs): per-window PipelineStats snapshots, stage
  // histograms, trace spans, and tool-time accounting; null disables.
  // Borrowed, must outlive the server.
  obs::ObsContext* obs = nullptr;
  // Time source for stage timings (null = the process-wide real clock).
  // Tests install a util::VirtualClock so window/stage timing logic runs
  // deterministically without sleeps; borrowed, must outlive the server.
  util::Clock* clock = nullptr;
  // Live detection surfaces: with obs attached, each window also computes
  // detection-health gauges, journals window/variance-region events, and —
  // if the ObsContext runs an exposition server — answers /v1/heatmap and
  // /v1/variance.  ServerGroup clears this on its leaves and serves the
  // merged views itself.
  bool live_detection = true;
};

// A non-repeated execution path that nonetheless consumed noticeable time —
// Algorithm 1 line 8 asks the user to check whether it is abnormal.
struct RareFinding {
  std::string state;          // human-readable edge/vertex description
  FragmentKind kind = FragmentKind::kComputation;
  std::size_t executions = 0;
  double total_seconds = 0.0;
  double longest_seconds = 0.0;
  double window_start = 0.0;  // virtual time of the window that saw it
};

// Cumulative stage occupancy of the staged pipeline, for throughput
// benches and capacity planning: where did the wall time go?  Analysis
// busy counts the window body (STG growth through diagnosis) whether it
// ran inline (depth 1) or on the worker.  Wait time is split by side so a
// flat throughput curve is attributable: producer-block (queue_stall_*)
// means the analysis worker is the bottleneck, consumer-idle means the
// producer/drain side is, and handoff_wait is how long admitted windows
// sat queued before the worker started them.
struct PipelineBreakdown {
  double analysis_busy_seconds = 0.0;
  double queue_stall_seconds = 0.0;   // producer blocked on a full queue
  std::uint64_t queue_stalls = 0;
  double consumer_idle_seconds = 0.0;  // worker waiting for work
  std::uint64_t consumer_idle_waits = 0;
  double handoff_wait_seconds = 0.0;   // submit→start latency, summed
  // Intra-window shard pool occupancy (empty/zero at analysis_threads 1):
  // cumulative per-lane busy seconds and task counts since construction,
  // pool idle time, and the number of fan-outs.  Imbalance for a balanced
  // fan-out is max(lane busy) / mean(lane busy) ≈ 1.
  std::size_t shard_lanes = 0;
  std::vector<double> shard_busy_seconds;
  std::vector<std::uint64_t> shard_tasks;
  double shard_idle_seconds = 0.0;
  std::uint64_t shard_runs = 0;
};

class AnalysisServer {
 public:
  AnalysisServer(int ranks, ServerOptions opts);
  ~AnalysisServer();

  // Ingests and analyzes one window of client data.  `drain_seconds` is
  // the wall time the caller spent draining the clients — it becomes the
  // "drain" stage of this window's PipelineStats snapshot.
  //
  // With pipeline_depth > 1 this only HANDS OFF the window to the analysis
  // worker: it returns as soon as the pipeline accepts the batch (blocking
  // for backpressure when `pipeline_depth` windows are already admitted)
  // and the caller may immediately start draining the next window.
  void process_window(FragmentBatch batch, double drain_seconds = 0.0);

  // Blocks until every admitted window has been fully analyzed.  The
  // producer-side synchronization point of the pipelined server: after
  // sync() every accessor below reflects all submitted windows, and the
  // worker's writes happen-before the caller's reads (TSan-clean).  No-op
  // at pipeline_depth 1.  All state accessors call it implicitly.
  void sync() const;

  // Restarts diagnosis, optionally focused on a heat-map region the user
  // selected (§3.5): subsequent windows attribute only that region's
  // abnormal fragments.
  void refocus_diagnosis(std::optional<FocusRegion> focus);

  // --- detection outputs ---
  const Heatmap& computation_map() const { sync(); return comp_map_; }
  const Heatmap& communication_map() const { sync(); return comm_map_; }
  const Heatmap& io_map() const { sync(); return io_map_; }
  std::vector<VarianceRegion> locate(FragmentKind kind) const;

  // --- diagnosis outputs ---
  const DiagnosisReport& diagnosis() const { sync(); return diagnoser_.report(); }
  bool diagnosis_finished() const { sync(); return diagnoser_.finished(); }
  // Counters the clients should activate for the next window.  Deliberately
  // does NOT sync: when diagnosis is off the demand is constant, and when
  // it is on the session syncs explicitly before reprogramming so the
  // PMU feedback loop sees exactly the same state as a serial run.
  std::vector<pmu::Counter> counters_needed() const {
    return diagnoser_.counters_needed();
  }

  // --- bookkeeping ---
  const CoverageAccumulator& coverage() const { sync(); return coverage_; }
  std::size_t windows_processed() const { sync(); return windows_; }
  std::size_t fragments_processed() const { sync(); return fragments_; }
  std::size_t rare_clusters_reported() const { sync(); return rare_clusters_; }
  // Windows whose live detection publish was lost to an injected
  // "server.window" fault; journal_detection_snapshot still recovers the
  // final regions.
  std::size_t publish_faults() const { sync(); return publish_faults_; }
  // Windows that fell back to synchronous hand-off because the injected
  // "pipeline.handoff" fault fired (pipelined mode only; outputs are
  // unaffected — the window is analyzed in-line instead of overlapped).
  std::size_t handoff_faults() const { sync(); return handoff_faults_; }
  // Windows whose intra-window fan-out degraded to serial because the
  // injected "pipeline.shard" fault fired (analysis_threads > 1 only;
  // outputs are unaffected — sharding is byte-equivalent by design).
  std::size_t shard_faults() const { sync(); return shard_faults_; }
  // Per-stage occupancy since construction (syncs first, so it reflects
  // every admitted window).
  PipelineBreakdown pipeline_breakdown() const;
  // Rare-but-expensive paths surfaced per Algorithm 1 line 8, sorted by
  // total time (descending), capped at rare_report_limit.
  const std::vector<RareFinding>& rare_findings() const {
    sync();
    return rare_findings_;
  }
  const Stg& stg() const { sync(); return stg_; }
  const ClusterSeedCache& seed_cache() const { sync(); return seed_cache_; }

  // V-measure of fixed-workload identification vs ground truth — valid
  // when record_eval_pairs was set and labelled fragments were seen.
  stats::VMeasure clustering_quality() const;

  // Emits a final, full-precision `variance_region` snapshot (final=true)
  // for every category into the journal so vapro_replay can reconstruct
  // the end-of-run detection report from the journal alone.  No-op without
  // a journal.
  void journal_detection_snapshot() const;

  // Live JSON views served at /v1/heatmap and /v1/variance — also usable
  // without an exposition server.  Region fields match report_json's.
  std::string render_heatmap_json() const;
  std::string render_variance_json() const;

  // Self-diagnosis views served at /v1/latency and /v1/critical_path:
  // per-window stage latency records and their "window N was bound by
  // stage X" critical-path attribution.  Tracked for every server (cheap),
  // journaled as window_latency/critical_path events when live_detection.
  const obs::CriticalPathTracker& latency_tracker() const {
    sync();
    return latency_;
  }
  std::string render_latency_json() const;
  std::string render_critical_path_json() const;

 private:
  void attach_live_routes();
  // The full analysis body (STG growth → clustering → normalization →
  // deposit → diagnosis) for one window.  Runs on the caller at
  // pipeline_depth 1, on the single pipeline worker otherwise.
  // `submit_seconds` is the producer clock at hand-off (queue-wait
  // attribution); `flow_id` links the producer's handoff flow arrow to the
  // window span (0 = no trace).
  void analyze_window(FragmentBatch batch, double drain_seconds,
                      double submit_seconds, std::uint64_t flow_id);
  // Detection-health gauges + window/region journal events for one window;
  // `pool` shards the region growing (null = serial, e.g. a degraded
  // window).
  void publish_detection(const obs::PipelineStats& stats,
                         util::WorkerPool* pool);
  // locate() for callers already holding live_mu_ (live_mu_ also
  // serializes pool use, honoring the pool's single-coordinator contract).
  std::vector<VarianceRegion> locate_locked(FragmentKind kind,
                                            util::WorkerPool* pool) const;
  // vapro.pipeline.* gauges (queue depth, stall time, occupancy).
  void publish_pipeline_gauges() const;
  ServerOptions opts_;
  int ranks_;
  Stg stg_;
  ClusterBaseline baseline_;
  Heatmap comp_map_;
  Heatmap comm_map_;
  Heatmap io_map_;
  CoverageAccumulator coverage_;
  ProgressiveDiagnoser diagnoser_;
  std::size_t windows_ = 0;
  std::size_t fragments_ = 0;
  std::size_t rare_clusters_ = 0;
  std::size_t publish_faults_ = 0;
  std::size_t handoff_faults_ = 0;
  std::size_t shard_faults_ = 0;
  // Written by analyze_window (worker thread at depth > 1); read only
  // after sync(), which establishes the happens-before edge.
  double analysis_busy_seconds_ = 0.0;
  // Per-window critical-path records (own mutex; safe from worker + serve
  // threads).
  obs::CriticalPathTracker latency_;
  std::vector<RareFinding> rare_findings_;
  // Intra-window shard pool (null at analysis_threads 1): clustering and
  // region growing fan out across its lanes.  Every run() happens under
  // live_mu_, satisfying the pool's single-coordinator contract even
  // though locate() may be called from the serve thread.  Declared before
  // pipeline_ so it outlives the stage worker that uses it.
  mutable std::unique_ptr<util::WorkerPool> workers_;
  // The analysis pipeline (null at pipeline_depth 1).  Mutable so const
  // accessors can sync(); destroyed first in ~AnalysisServer so the worker
  // never outlives the state it writes.
  mutable std::unique_ptr<util::StageExecutor> pipeline_;
  ClusterSeedCache seed_cache_;
  std::vector<Fragment> overlap_carry_;
  // (truth label, predicted cluster label) for labelled comp fragments.
  std::vector<int> eval_truth_;
  std::vector<int> eval_predicted_;
  // Serializes process_window against concurrent /v1 scrapes; route
  // handlers and journal_detection_snapshot take it too.
  mutable std::mutex live_mu_;
  std::vector<std::string> live_routes_;
  double last_virtual_time_ = 0.0;
  mutable RegionJournal region_journal_;
};

}  // namespace vapro::core
