// The Vapro client — the per-process data-collection half of the tool
// (paper Fig 2, steps 1–3).
//
// It implements the simulator's Interceptor interface, i.e. it sits exactly
// where an LD_PRELOAD shim sits in the real system.  On every external
// invocation it:
//   * cuts a computation fragment covering the span since the previous
//     invocation ended, with counter deltas read through the rank's
//     CounterSet (budget-limited, jittered);
//   * records the invocation itself as a communication/IO fragment with
//     its arguments;
//   * announces newly seen running states so the server can grow the STG.
//
// Fragments accumulate in per-rank buffers until the analysis server drains
// them at the end of each window.  Optional sampling (paper §3.5/§5)
// applies binary exponential backoff per call-site: after a warm-up, only
// power-of-two occurrences are recorded.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/columns.hpp"
#include "src/core/fragment.hpp"
#include "src/core/stg.hpp"
#include "src/obs/context.hpp"
#include "src/pmu/counter_set.hpp"
#include "src/sim/intercept.hpp"

namespace vapro::core {

// §3.5/§5 sampling policies trading overhead against detection ability:
//   kNone     — record every invocation.
//   kBackoff  — binary exponential backoff per call-site: after a warm-up,
//               only power-of-two occurrences are recorded (the Dyninst
//               probe-frequency adaptation of §5).
//   kSkipShort — the heuristic §3.5 recommends: call sites whose fragments
//               are short are decimated, long fragments always recorded —
//               keeps coverage (time-weighted) high at low data volume.
enum class SamplingPolicy { kNone, kBackoff, kSkipShort };

struct ClientOptions {
  StgMode stg_mode = StgMode::kContextFree;
  // Simultaneously programmable PMU counters per rank.
  int pmu_budget = 4;
  // Multiplicative stddev of counter read error.
  double pmu_jitter = 0.003;
  SamplingPolicy sampling = SamplingPolicy::kNone;
  int sampling_warmup = 64;
  // kSkipShort: sites whose mean fragment span is below this are decimated
  // to one record in `short_keep_one_in`.
  double short_threshold_seconds = 500e-6;
  int short_keep_one_in = 8;
  std::uint64_t seed = 42;
  // Self-telemetry (src/obs): interception tool-time accounting, fragment
  // cut/sample/drop counters, PMU reprogram events; null disables.
  obs::ObsContext* obs = nullptr;
};

// One window's worth of data shipped from clients to the server.
// Fragments travel as SoA columns end-to-end: the client appends into
// them, drain() moves them out (arena swap), and the server adopts them
// into the window STG without a copy.
struct FragmentBatch {
  std::vector<sim::InvocationInfo> new_states;
  FragmentColumns fragments;
};

class VaproClient final : public sim::Interceptor {
 public:
  VaproClient(int ranks, ClientOptions opts);

  // sim::Interceptor:
  bool wants_call_path() const override {
    return opts_.stg_mode == StgMode::kContextAware;
  }
  void on_call_begin(const sim::InvocationInfo& info, double time,
                     const pmu::CounterSample& ground_truth) override;
  void on_call_end(const sim::InvocationInfo& info, double time,
                   const pmu::CounterSample& ground_truth) override;
  void on_program_end(sim::RankId rank, double time) override;

  // Reconfigures the programmable counters of every rank (progressive
  // diagnosis stage changes).  Returns false if over budget.
  bool configure_counters(const std::vector<pmu::Counter>& programmable);

  // Over-budget sets are accepted by time-multiplexing the PMU (PAPI
  // style): reads stay unbiased but their error grows by 1/duty.
  void configure_counters_multiplexed(
      const std::vector<pmu::Counter>& programmable);

  // Moves all buffered data out (called by the server each window).
  FragmentBatch drain();

  // Currently active programmable counters of a rank's PMU set (test and
  // tooling visibility into progressive staging).
  const std::vector<pmu::Counter>& active_counters(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].counters.active_programmable();
  }

  // Storage-overhead accounting (Table 1's KB/s discussion).
  std::uint64_t bytes_recorded() const { return bytes_recorded_; }
  std::uint64_t fragments_recorded() const { return fragments_recorded_; }
  std::uint64_t invocations_seen() const { return invocations_seen_; }
  std::uint64_t invocations_sampled_out() const { return sampled_out_; }
  // Fragments lost to injected "client.ingest" drops (a crashed or
  // corrupted per-rank record); the analysis server never sees these.
  std::uint64_t ingest_faults() const { return ingest_faults_; }

 private:
  struct RankState {
    pmu::CounterSet counters;
    bool has_last = false;
    StateKey last_state = kStartState;
    double last_end_time = 0.0;
    pmu::CounterSample last_gt;
    double begin_time = 0.0;
    bool record_current = true;
    struct SiteStats {
      std::uint64_t count = 0;
      double mean_span = 0.0;  // running mean of full fragment spans
    };
    std::unordered_map<sim::CallSiteId, SiteStats> sites;
    explicit RankState(std::uint64_t seed, int budget, double jitter)
        : counters(seed, budget, jitter) {}
  };

  bool should_record(RankState& rs, sim::CallSiteId site);
  void account(const Fragment& f);
  // Publishes the delta of the client's tallies since the previous drain
  // into the metrics registry (no-op without obs).
  void publish_metrics_locked();
  // Journals a pmu_reprogram event when the programmed set changed
  // (no-op without a journal).
  void journal_reprogram(const std::string& counters, bool multiplexed,
                         std::size_t slots);

  ClientOptions opts_;
  std::vector<RankState> ranks_;
  std::unordered_set<StateKey> announced_;
  FragmentBatch buffer_;
  std::uint64_t bytes_recorded_ = 0;
  std::uint64_t fragments_recorded_ = 0;
  std::uint64_t invocations_seen_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t ingest_faults_ = 0;
  // Registry tallies published so far (drain-time deltas keep the hot
  // interception path free of registry traffic).
  std::uint64_t published_bytes_ = 0;
  std::uint64_t published_fragments_ = 0;
  std::uint64_t published_invocations_ = 0;
  std::uint64_t published_sampled_out_ = 0;
  // Last journaled counter programming ("mux:"-prefixed when multiplexed).
  std::string journaled_counters_;
};

}  // namespace vapro::core
