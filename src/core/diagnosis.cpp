#include "src/core/diagnosis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/stats/collinearity.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/ols.hpp"
#include "src/util/check.hpp"

namespace vapro::core {

namespace {

// Factor values per fragment as a column per factor.
std::vector<std::vector<double>> factor_columns(
    const Stg& stg, const std::vector<std::size_t>& members,
    const std::vector<FactorId>& factors, const pmu::MachineParams& machine) {
  std::vector<std::vector<double>> cols(factors.size());
  for (std::size_t f = 0; f < factors.size(); ++f) {
    cols[f].reserve(members.size());
    for (std::size_t idx : members) {
      cols[f].push_back(
          factor_value(factors[f], stg.fragment(idx).counters(), machine));
    }
  }
  return cols;
}

bool column_is_constant(const std::vector<double>& col) {
  if (col.empty()) return true;
  double lo = col[0], hi = col[0];
  for (double v : col) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo <= 1e-12 * std::max(1.0, std::fabs(hi));
}

}  // namespace

OlsQuantification ols_quantify(const Stg& stg,
                               const std::vector<std::size_t>& members,
                               const std::vector<FactorId>& factors,
                               const pmu::MachineParams& machine,
                               double alpha) {
  OlsQuantification out;
  out.estimates.reserve(factors.size());
  for (FactorId f : factors) out.estimates.push_back(OlsFactorEstimate{f});
  if (members.size() < factors.size() + 3) return out;

  std::vector<double> y;
  y.reserve(members.size());
  for (std::size_t idx : members) y.push_back(stg.fragment(idx).duration());

  auto raw = factor_columns(stg, members, factors, machine);

  // Min-max normalize each factor to [0,1] (paper §4.2); constant columns
  // cannot be regressed and are excluded up front.
  std::vector<std::size_t> variable;  // indices into `factors`
  std::vector<std::vector<double>> norm_cols;
  std::vector<double> spans;
  for (std::size_t f = 0; f < factors.size(); ++f) {
    if (column_is_constant(raw[f])) {
      out.estimates[f].constant = true;
      continue;
    }
    double lo = *std::min_element(raw[f].begin(), raw[f].end());
    double hi = *std::max_element(raw[f].begin(), raw[f].end());
    std::vector<double> col(raw[f].size());
    for (std::size_t i = 0; i < col.size(); ++i)
      col[i] = (raw[f][i] - lo) / (hi - lo);
    variable.push_back(f);
    norm_cols.push_back(std::move(col));
    spans.push_back(hi - lo);
  }
  if (variable.empty()) return out;

  // Farrar–Glauber pruning of multicollinear factors.
  stats::CollinearityReduction reduction =
      stats::reduce_multicollinearity(norm_cols, alpha);

  std::vector<std::vector<double>> kept_cols;
  kept_cols.reserve(reduction.kept.size());
  for (std::size_t k : reduction.kept) kept_cols.push_back(norm_cols[k]);
  stats::OlsResult fit = stats::ols_fit_columns(y, kept_cols, true);
  if (!fit.ok) return out;

  out.ok = true;
  out.r_squared = fit.r_squared;

  auto column_sum = [](const std::vector<double>& col) {
    double s = 0.0;
    for (double v : col) s += v;
    return s;
  };

  for (std::size_t j = 0; j < reduction.kept.size(); ++j) {
    const std::size_t f = variable[reduction.kept[j]];
    OlsFactorEstimate& est = out.estimates[f];
    est.p_value = fit.p_values[j];
    est.significant = est.p_value < alpha;
    // Undo the normalization: the coefficient is seconds per normalized
    // unit, so total factor time = coef · Σ x_norm.
    est.total_seconds = fit.coefficients[j] * column_sum(norm_cols[reduction.kept[j]]);
  }
  // Factors removed for multicollinearity inherit an estimate through their
  // linear relation to the kept factors (paper §4.2 last step).
  for (std::size_t r = 0; r < reduction.removed.size(); ++r) {
    const std::size_t f = variable[reduction.removed[r]];
    OlsFactorEstimate& est = out.estimates[f];
    est.recovered_from_collinearity = true;
    double coef = 0.0;
    for (std::size_t j = 0; j < reduction.kept.size(); ++j)
      coef += reduction.relation[r][j] * fit.coefficients[j];
    est.total_seconds = coef * column_sum(norm_cols[reduction.removed[r]]);
    est.p_value = 1.0;
  }
  return out;
}

ContributionWindow analyze_contributions(const Stg& stg,
                                         const ClusteringResult& clusters,
                                         const std::vector<FactorId>& factors,
                                         const pmu::MachineParams& machine,
                                         const DiagnosisOptions& opts) {
  ContributionWindow window;
  window.factors.reserve(factors.size());
  for (FactorId f : factors) window.factors.push_back(FactorContribution{f});

  // Split factors into formula-quantified and count-only.
  std::vector<std::size_t> quantified, counted;
  for (std::size_t f = 0; f < factors.size(); ++f) {
    (factor_def(factors[f]).time_quantified ? quantified : counted).push_back(f);
  }

  for (const Cluster& c : clusters.clusters) {
    if (c.rare || c.kind != FragmentKind::kComputation) continue;
    if (c.members.size() <
        static_cast<std::size_t>(opts.min_cluster_fragments))
      continue;

    std::vector<double> durations;
    durations.reserve(c.members.size());
    double fastest = std::numeric_limits<double>::infinity();
    for (std::size_t idx : c.members) {
      durations.push_back(stg.fragment(idx).duration());
      fastest = std::min(fastest, durations.back());
    }
    if (fastest <= 0.0) continue;

    auto raw = factor_columns(stg, c.members, factors, machine);

    // Per-event cost of count-only factors, fitted per cluster on the
    // residual time (duration minus everything the formulas explain).
    std::vector<double> event_cost(factors.size(), 0.0);
    if (!counted.empty()) {
      std::vector<double> residual(durations);
      for (std::size_t i = 0; i < residual.size(); ++i)
        for (std::size_t q : quantified) residual[i] -= raw[q][i];
      std::vector<std::vector<double>> count_cols;
      std::vector<std::size_t> fit_idx;
      for (std::size_t cidx : counted) {
        if (column_is_constant(raw[cidx])) continue;
        count_cols.push_back(raw[cidx]);
        fit_idx.push_back(cidx);
      }
      if (!count_cols.empty() &&
          residual.size() >= count_cols.size() + 3) {
        stats::CollinearityReduction reduction =
            stats::reduce_multicollinearity(count_cols, opts.significance_alpha);
        std::vector<std::vector<double>> kept_cols;
        for (std::size_t k : reduction.kept) kept_cols.push_back(count_cols[k]);
        stats::OlsResult fit = stats::ols_fit_columns(residual, kept_cols, true);
        if (fit.ok) {
          for (std::size_t j = 0; j < reduction.kept.size(); ++j) {
            if (fit.p_values[j] < opts.significance_alpha)
              event_cost[fit_idx[reduction.kept[j]]] =
                  std::max(0.0, fit.coefficients[j]);
          }
          for (std::size_t r = 0; r < reduction.removed.size(); ++r) {
            double coef = 0.0;
            for (std::size_t j = 0; j < reduction.kept.size(); ++j)
              coef += reduction.relation[r][j] * fit.coefficients[j];
            event_cost[fit_idx[reduction.removed[r]]] = std::max(0.0, coef);
          }
        }
      }
    }

    // Per-fragment factor time in seconds.
    auto factor_time = [&](std::size_t f, std::size_t i) {
      return factor_def(factors[f]).time_quantified
                 ? raw[f][i]
                 : raw[f][i] * event_cost[f];
    };

    // Reference values: mean over normal fragments.
    const double abnormal_cut = opts.abnormal_ratio * fastest;
    std::vector<double> ref(factors.size(), 0.0);
    std::size_t normals = 0;
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      if (durations[i] > abnormal_cut) continue;
      ++normals;
      for (std::size_t f = 0; f < factors.size(); ++f)
        ref[f] += factor_time(f, i);
    }
    if (normals == 0) continue;
    for (double& r : ref) r /= static_cast<double>(normals);

    for (std::size_t i = 0; i < c.members.size(); ++i) {
      if (c.members[i] < opts.live_begin) continue;  // carry-in
      window.observed_seconds += durations[i];
      if (durations[i] <= abnormal_cut) continue;
      if (opts.focus) {
        const FragmentView f = stg.fragment(c.members[i]);
        if (!opts.focus->contains(f.rank(), f.start_time(), f.end_time()))
          continue;
      }
      ++window.abnormal_fragments;
      window.abnormal_seconds += durations[i];
      const double slowdown = durations[i] - fastest;
      window.total_variance_seconds += slowdown;
      for (std::size_t f = 0; f < factors.size(); ++f) {
        const double excess = factor_time(f, i) - ref[f];
        if (excess > 0.0) window.factors[f].contribution_seconds += excess;
        // The factor is "major for this fragment" when it explains more
        // than major_share of the fragment's slowdown (Fig 11 regions).
        if (slowdown > 0.0 && excess > opts.major_share * slowdown)
          window.factors[f].duration_seconds += durations[i];
      }
    }
  }

  for (FactorContribution& fc : window.factors) {
    fc.major = window.total_variance_seconds > 0.0 &&
               fc.contribution_seconds >
                   opts.major_share * window.total_variance_seconds;
  }
  return window;
}

std::string DiagnosisReport::summary() const {
  std::ostringstream oss;
  if (findings.empty()) {
    oss << "no variance diagnosed";
    return oss.str();
  }
  oss << "progressive variance diagnosis (" << findings.size()
      << " factors examined):\n";
  for (const DiagnosisFinding& f : findings) {
    oss << "  S" << f.stage << " " << factor_name(f.id) << ": "
        << f.share * 100.0 << "% of slowdown, affecting "
        << f.duration_share * 100.0 << "% of execution time"
        << (f.major ? "  [MAJOR]" : "") << "\n";
  }
  oss << "  culprits:";
  for (FactorId f : culprits) oss << " [" << factor_name(f) << "]";
  return oss.str();
}

ProgressiveDiagnoser::ProgressiveDiagnoser(pmu::MachineParams machine,
                                           DiagnosisOptions opts)
    : machine_(machine), opts_(opts), frontier_(children_of(FactorId::kRoot)) {}

void ProgressiveDiagnoser::restart(std::optional<FocusRegion> focus) {
  opts_.focus = std::move(focus);
  frontier_ = children_of(FactorId::kRoot);
  stage_ = 1;
  finished_ = false;
  report_ = DiagnosisReport{};
}

std::vector<pmu::Counter> ProgressiveDiagnoser::counters_needed() const {
  return counters_for(frontier_);
}

void ProgressiveDiagnoser::feed(const Stg& stg,
                                const ClusteringResult& clusters,
                                std::size_t live_begin) {
  if (finished_) return;
  // The per-stage span nests inside the server's "diagnose" stage span, so
  // a trace shows exactly which windows ran under S1/S2/S3.
  obs::TraceSpan span(
      opts_.obs ? opts_.obs->trace() : nullptr,
      "diagnosis.S" + std::to_string(stage_), "diagnosis",
      {obs::TraceRecorder::arg("factors",
                               static_cast<std::uint64_t>(frontier_.size()))});
  opts_.live_begin = live_begin;
  ContributionWindow window =
      analyze_contributions(stg, clusters, frontier_, machine_, opts_);
  // A window without meaningful variance doesn't advance the stage — the
  // diagnoser keeps watching with the same counters (§4.3's n-period cost).
  if (window.abnormal_fragments < 3 || window.total_variance_seconds <= 0.0)
    return;

  obs::Journal* journal = opts_.obs ? opts_.obs->journal() : nullptr;
  if (journal) {
    // Events use window=-1: the diagnoser doesn't know the analysis-window
    // ordinal; consumers correlate by sequence order (findings precede the
    // server's "window" event for the same window — alerts.hpp relies on
    // this).
    journal->emit(
        "diagnosis_window", -1, 0.0,
        {obs::JournalField::num("stage", static_cast<std::int64_t>(stage_)),
         obs::JournalField::num(
             "abnormal_fragments",
             static_cast<std::uint64_t>(window.abnormal_fragments)),
         obs::JournalField::num("variance_seconds",
                                window.total_variance_seconds),
         obs::JournalField::num("abnormal_seconds", window.abnormal_seconds),
         obs::JournalField::num("observed_seconds", window.observed_seconds)});
  }

  report_.total_variance_seconds += window.total_variance_seconds;
  std::vector<FactorId> majors;
  for (const FactorContribution& fc : window.factors) {
    DiagnosisFinding finding;
    finding.id = fc.id;
    finding.stage = stage_;
    finding.contribution_seconds = fc.contribution_seconds;
    finding.share = fc.contribution_seconds / window.total_variance_seconds;
    finding.duration_seconds = fc.duration_seconds;
    finding.duration_share =
        window.observed_seconds > 0.0
            ? fc.duration_seconds / window.observed_seconds
            : 0.0;
    finding.major = fc.major;
    report_.findings.push_back(finding);
    if (fc.major) majors.push_back(fc.id);
    if (journal) {
      journal->emit(
          "diagnosis_finding", -1, 0.0,
          {obs::JournalField::str("factor",
                                  std::string(factor_name(finding.id))),
           obs::JournalField::num("stage",
                                  static_cast<std::int64_t>(finding.stage)),
           obs::JournalField::num("contribution_seconds",
                                  finding.contribution_seconds),
           obs::JournalField::num("share", finding.share),
           obs::JournalField::num("duration_seconds",
                                  finding.duration_seconds),
           obs::JournalField::num("duration_share", finding.duration_share),
           obs::JournalField::boolean("major", finding.major)});
    }
  }

  std::vector<FactorId> next;
  for (FactorId m : majors) {
    for (FactorId child : children_of(m)) next.push_back(child);
  }
  if (next.empty()) {
    report_.culprits = majors;
    finished_ = true;
    if (opts_.obs) {
      opts_.obs->metrics().counter("vapro.diagnosis.finished")->inc();
      std::string culprits;
      for (FactorId f : majors) {
        if (!culprits.empty()) culprits += ",";
        culprits += std::string(factor_name(f));
      }
      if (journal)
        journal->emit(
            "diagnosis_finished", -1, 0.0,
            {obs::JournalField::str("culprits", culprits),
             obs::JournalField::num("stage",
                                    static_cast<std::int64_t>(stage_))});
      if (auto* trace = opts_.obs->trace())
        trace->instant("diagnosis.finished", "diagnosis",
                       {obs::TraceRecorder::arg("culprits", culprits)});
    }
    return;
  }
  frontier_ = std::move(next);
  ++stage_;
  // Stage descent: the next window needs a different counter set — exactly
  // the moment the session reprograms the clients' PMUs.
  if (opts_.obs) {
    opts_.obs->metrics().counter("vapro.diagnosis.stage_advances")->inc();
    if (journal)
      journal->emit(
          "diagnosis_stage", -1, 0.0,
          {obs::JournalField::num("to_stage",
                                  static_cast<std::int64_t>(stage_)),
           obs::JournalField::num(
               "frontier", static_cast<std::uint64_t>(frontier_.size()))});
    if (auto* trace = opts_.obs->trace()) {
      trace->instant(
          "diagnosis.stage_advance", "diagnosis",
          {obs::TraceRecorder::arg(
               "to_stage", static_cast<std::uint64_t>(stage_)),
           obs::TraceRecorder::arg(
               "frontier", static_cast<std::uint64_t>(frontier_.size()))});
    }
  }
}

}  // namespace vapro::core
