// Variance detection (paper §3.5).
//
// Fragments in a fixed-workload cluster should take the fastest member's
// time; normalized performance = fastest / actual ∈ (0, 1].  Normalized
// values from all clusters are merged per category (computation,
// communication, IO) into heat maps; a region-growing pass then locates
// contiguous low-performance regions.
//
// Analysis runs in overlapping sliding windows (Fig 8): the ClusterBaseline
// carries each cluster's fastest-observed time across windows so that
// normalization in window N is consistent with window N−1 even when the
// fast fragments all happened earlier.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/clustering.hpp"
#include "src/core/heatmap.hpp"
#include "src/core/stg.hpp"

namespace vapro::core {

struct NormalizedFragment {
  std::size_t frag_idx = 0;
  int rank = 0;
  double start = 0.0;
  double end = 0.0;
  double perf = 1.0;
  FragmentKind kind = FragmentKind::kComputation;
};

// Cross-window memory of cluster minima.  Cluster identity across windows =
// (edge/vertex, kind, seed norm quantized into clustering-threshold-sized
// buckets) — stable because Algorithm 1 seeds are the per-class minima.
class ClusterBaseline {
 public:
  explicit ClusterBaseline(double norm_quantum = 0.05)
      : norm_quantum_(norm_quantum) {}

  // Merges `window_min` (fastest duration of the cluster in this window)
  // into history; returns the all-time minimum for normalization.
  double update(const Cluster& c, double window_min);

  std::size_t size() const { return mins_.size(); }

  // Stable cross-window cluster identity; also used as the cluster label
  // when scoring identification quality against ground truth (Table 2).
  std::uint64_t key_of(const Cluster& c) const;

 private:
  double norm_quantum_;
  std::unordered_map<std::uint64_t, double> mins_;
};

// Normalizes every member of every non-rare cluster.  `baseline` may be
// nullptr for single-shot (offline) analysis.  Fragments with index below
// `live_begin` are overlap carry-ins from the previous window (Fig 8):
// they participate in cluster formation and minima but are not re-emitted.
std::vector<NormalizedFragment> normalize_fragments(
    const Stg& stg, const ClusteringResult& clusters, ClusterBaseline* baseline,
    std::size_t live_begin = 0);

// Per-category coverage bookkeeping for Table 1: covered = fragment time in
// repeated (non-rare) fixed-workload clusters.
struct CoverageAccumulator {
  double covered[3] = {0.0, 0.0, 0.0};   // indexed by FragmentKind
  double observed[3] = {0.0, 0.0, 0.0};

  // `live_begin` excludes overlap carry-ins from double counting.
  void add(const Stg& stg, const ClusteringResult& clusters,
           std::size_t live_begin = 0);
  double covered_total() const { return covered[0] + covered[1] + covered[2]; }
  double observed_total() const {
    return observed[0] + observed[1] + observed[2];
  }
  // Coverage as the paper defines it: covered time / total execution time.
  // `total_execution_seconds` = per-rank run time summed over ranks.
  double coverage(double total_execution_seconds) const;
};

// Deposits normalized fragments into the per-category heat maps.
void deposit_fragments(std::span<const NormalizedFragment> fragments,
                       Heatmap& computation, Heatmap& communication,
                       Heatmap& io);

}  // namespace vapro::core
