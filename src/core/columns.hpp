// Structure-of-arrays fragment storage (the hot-path window layout).
//
// A window's fragments used to live in std::vector<Fragment> — one 200+
// byte struct per fragment, so clustering's norm sort and region growing's
// sweeps dragged counters/args cache lines they never read.  Here every
// field is its own contiguous column, sized together and carved from one
// per-window bump arena (src/util/arena.hpp):
//
//   kind | rank | from | to | start | end | counters | args | op | truth
//
// The counters column is pmu::CounterSample[] — CounterSample is a plain
// std::array<double, kCounterCount>, so the column IS a dense n×18 double
// block without any reinterpret_cast (keeps ubsan honest).
//
// Ownership rules that make the pipeline fast and the tests possible:
//   * move      = arena pointer swap (stage hand-off: drain → analysis →
//                 publish, ServerGroup leaf merge) — no per-fragment copy;
//   * copy      = deep copy into a fresh arena (stress/test harnesses
//                 replay the same batch across runs);
//   * clear()   = arena reset — chunks stay reserved, the next window
//                 refills warm memory.
//
// FragmentView is the migration shim: a {columns*, index} pair with
// field-named accessors, so code written against `const Fragment&` reads
// (clustering, detection, diagnosis, wire encode, benches) ports by
// swapping `.field` for `.field()`.  materialize() rebuilds a Fragment
// when a true value copy is needed (overlap carry, chaos reordering).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/fragment.hpp"
#include "src/util/arena.hpp"

namespace vapro::core {

class FragmentColumns;

class FragmentView {
 public:
  FragmentView(const FragmentColumns* cols, std::size_t index)
      : cols_(cols), i_(index) {}

  FragmentKind kind() const;
  sim::RankId rank() const;
  StateKey from() const;
  StateKey to() const;
  double start_time() const;
  double end_time() const;
  const pmu::CounterSample& counters() const;
  const sim::CommArgs& args() const;
  sim::OpKind op() const;
  std::int64_t truth_class() const;
  double duration() const { return end_time() - start_time(); }

  // Value copy, for the few sites that need to own a Fragment (overlap
  // carry-over, wire chaos reordering, test fixtures).
  Fragment materialize() const;

  std::size_t index() const { return i_; }

 private:
  const FragmentColumns* cols_;
  std::size_t i_;
};

class FragmentColumns {
 public:
  FragmentColumns() = default;
  ~FragmentColumns() = default;

  // Move = arena swap: O(1), no fragment is touched.  The moved-from
  // object is left empty and reusable.
  FragmentColumns(FragmentColumns&& other) noexcept;
  FragmentColumns& operator=(FragmentColumns&& other) noexcept;

  // Copy = deep copy into a fresh arena.
  FragmentColumns(const FragmentColumns& other);
  FragmentColumns& operator=(const FragmentColumns& other);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Drops all fragments and rewinds the arena; reserved chunks are kept so
  // the next window's columns land in warm memory.
  void clear();

  void reserve(std::size_t n);
  void push_back(const Fragment& f);
  void push_back(const FragmentView& v);
  void append(const FragmentColumns& other);

  // Whole-fragment overwrite (test fixtures patch fields through this:
  // materialize → mutate → set).
  void set(std::size_t i, const Fragment& f);

  Fragment materialize(std::size_t i) const {
    return FragmentView(this, i).materialize();
  }

  FragmentView operator[](std::size_t i) const {
    return FragmentView(this, i);
  }

  // Per-field element access (bounds unchecked; hot paths).
  FragmentKind kind(std::size_t i) const { return kind_[i]; }
  sim::RankId rank(std::size_t i) const { return rank_[i]; }
  StateKey from(std::size_t i) const { return from_[i]; }
  StateKey to(std::size_t i) const { return to_[i]; }
  double start_time(std::size_t i) const { return start_[i]; }
  double end_time(std::size_t i) const { return end_[i]; }
  const pmu::CounterSample& counters(std::size_t i) const {
    return counters_[i];
  }
  const sim::CommArgs& args(std::size_t i) const { return args_[i]; }
  sim::OpKind op(std::size_t i) const { return op_[i]; }
  std::int64_t truth_class(std::size_t i) const { return truth_[i]; }
  double duration(std::size_t i) const { return end_[i] - start_[i]; }

  // Raw columns for contiguous sweeps (region growing, stats folds) and
  // for the tests that prove moves really are pointer swaps.
  const FragmentKind* kind_data() const { return kind_; }
  const sim::RankId* rank_data() const { return rank_; }
  const StateKey* from_data() const { return from_; }
  const StateKey* to_data() const { return to_; }
  const double* start_data() const { return start_; }
  const double* end_data() const { return end_; }
  const pmu::CounterSample* counters_data() const { return counters_; }

  class const_iterator {
   public:
    using value_type = FragmentView;
    using difference_type = std::ptrdiff_t;

    const_iterator(const FragmentColumns* cols, std::size_t index)
        : cols_(cols), i_(index) {}
    FragmentView operator*() const { return FragmentView(cols_, i_); }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const FragmentColumns* cols_;
    std::size_t i_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

  // Arena telemetry (obs gauges, layout tests).
  std::size_t arena_bytes_reserved() const { return arena_.bytes_reserved(); }
  std::size_t arena_bytes_used() const { return arena_.bytes_used(); }

 private:
  void grow(std::size_t min_capacity);
  void steal(FragmentColumns& other) noexcept;
  void copy_from(const FragmentColumns& other);

  util::Arena arena_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  FragmentKind* kind_ = nullptr;
  sim::RankId* rank_ = nullptr;
  StateKey* from_ = nullptr;
  StateKey* to_ = nullptr;
  double* start_ = nullptr;
  double* end_ = nullptr;
  pmu::CounterSample* counters_ = nullptr;
  sim::CommArgs* args_ = nullptr;
  sim::OpKind* op_ = nullptr;
  std::int64_t* truth_ = nullptr;
};

inline FragmentKind FragmentView::kind() const { return cols_->kind(i_); }
inline sim::RankId FragmentView::rank() const { return cols_->rank(i_); }
inline StateKey FragmentView::from() const { return cols_->from(i_); }
inline StateKey FragmentView::to() const { return cols_->to(i_); }
inline double FragmentView::start_time() const {
  return cols_->start_time(i_);
}
inline double FragmentView::end_time() const { return cols_->end_time(i_); }
inline const pmu::CounterSample& FragmentView::counters() const {
  return cols_->counters(i_);
}
inline const sim::CommArgs& FragmentView::args() const {
  return cols_->args(i_);
}
inline sim::OpKind FragmentView::op() const { return cols_->op(i_); }
inline std::int64_t FragmentView::truth_class() const {
  return cols_->truth_class(i_);
}

// FragmentView flavor of make_workload_vector (src/core/fragment.hpp);
// same definition via write_workload_dims.
WorkloadVector make_workload_vector(const FragmentView& f,
                                    const std::vector<pmu::Counter>& proxies);

}  // namespace vapro::core
