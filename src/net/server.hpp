// IngestServer — the socket front of the ingest plane.
//
// Accepts loopback TCP connections (the exposition server's idiom:
// socket/bind(INADDR_LOOPBACK)/listen, ephemeral port via getsockname,
// stop() by tearing the listen socket down) and speaks the wire protocol
// of wire.hpp: a kHello names the tenant, then kBatch frames stream in and
// each is answered with kAck (carrying the session layer's AckStatus) or
// kNack (CRC mismatch — "resend this seq").  Unlike the one-shot HTTP
// server, connections are long-lived: one reader thread per connection
// loops until kBye, EOF, or a protocol error.
//
// Hazard sites on the receive path:
//   net.frame_torn — the batch payload is corrupted after the read, so the
//     CRC check fails exactly as a torn TCP stream would: the server NACKs
//     and the client retransmits.
//   net.conn_reset — the connection is closed after admission but before
//     the ack, forcing the client down the reconnect + retransmit path;
//     the retransmit must dedup (AckStatus::kDuplicate), proving
//     idempotency end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/session.hpp"
#include "src/net/wire.hpp"

namespace vapro::net {

class IngestServer {
 public:
  explicit IngestServer(IngestPlane* plane) : plane_(plane) {}
  ~IngestServer() { stop(); }
  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  bool start(int port, std::string* error = nullptr);
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  int port() const { return port_; }

  // --- counters (relaxed; exact after stop()/sync) ---
  std::uint64_t connections_accepted() const { return accepted_.load(); }
  std::uint64_t frames_torn() const { return frames_torn_.load(); }
  std::uint64_t conn_resets() const { return conn_resets_.load(); }
  std::uint64_t batches_received() const { return batches_.load(); }
  // Replies that failed because the peer vanished mid-send (EPIPE /
  // ECONNRESET) — a counted drop, mirroring ExpositionServer::send_drops.
  std::uint64_t send_drops() const { return send_drops_.load(); }
  std::uint64_t protocol_errors() const { return protocol_errors_.load(); }

 private:
  void accept_loop();
  void handle_connection(int fd);
  // Sends one reply frame; counts a drop on failure.
  bool reply(int fd, FrameType type, std::uint64_t seq,
             const std::string& payload);

  IngestPlane* plane_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex conns_mu_;
  std::vector<int> conn_fds_;          // open connections (for stop())
  std::vector<std::thread> conn_threads_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> frames_torn_{0};
  std::atomic<std::uint64_t> conn_resets_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> send_drops_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace vapro::net
