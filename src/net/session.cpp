#include "src/net/session.hpp"

#include <utility>

#include "src/testing/fault.hpp"

namespace vapro::net {

// --- TenantSession ---------------------------------------------------------

TenantSession::TenantSession(TenantOptions opts, IngestPlane* plane)
    : opts_(std::move(opts)),
      plane_(plane),
      queue_(opts_.queue_capacity, plane->clock()) {
  if (opts_.group_servers > 1) {
    backend_group_ = std::make_unique<core::ServerGroup>(
        opts_.ranks, opts_.group_servers, opts_.server);
  } else {
    backend_server_ =
        std::make_unique<core::AnalysisServer>(opts_.ranks, opts_.server);
  }
  if (opts_.threaded) consumer_ = std::thread([this] { consumer_loop(); });
}

TenantSession::~TenantSession() {
  queue_.close();
  if (consumer_.joinable()) consumer_.join();
}

AckStatus TenantSession::submit(std::uint64_t seq, core::FragmentBatch batch,
                                double drain_seconds) {
  std::lock_guard<std::mutex> lock(seq_mu_);
  ++stats_.submitted;
  if (seq < next_expected_ || pending_.count(seq)) {
    ++stats_.duplicates;
    if (plane_->opts_.obs)
      plane_->opts_.obs->metrics().counter("vapro.net.batches_deduped")->inc();
    return AckStatus::kDuplicate;
  }
  if (seq >= next_expected_ + opts_.reorder_window) {
    ++stats_.rejected;
    journal_net_drop(seq, batch.fragments.size(), "reorder_window_exceeded");
    return AckStatus::kRejected;
  }
  if (seq != next_expected_) ++stats_.reordered;
  Queued q;
  q.seq = seq;
  q.drain_seconds = drain_seconds;
  q.batch = std::move(batch);
  pending_.emplace(seq, std::move(q));
  return apply_ready_locked(seq);
}

AckStatus TenantSession::apply_ready_locked(std::uint64_t submitted_seq) {
  AckStatus result = AckStatus::kAdmitted;
  while (!pending_.empty() && pending_.begin()->first == next_expected_) {
    auto it = pending_.begin();
    Queued q = std::move(it->second);
    pending_.erase(it);
    ++next_expected_;
    const bool is_submitted = q.seq == submitted_seq;
    const AckStatus outcome = enqueue_locked(std::move(q));
    if (is_submitted) result = outcome;
  }
  return result;
}

AckStatus TenantSession::enqueue_locked(Queued q) {
  // net.slow_peer: the deterministic overload stand-in.  Shedding the
  // INCOMING batch (not a queue victim) keeps the shed set a pure function
  // of the fault plan — a real queue victim's identity depends on consumer
  // scheduling, which the equivalence harness cannot allow.
  const std::uint64_t seq = q.seq;
  const std::size_t fragments = q.batch.fragments.size();
  const std::size_t new_states = q.batch.new_states.size();
  switch (VAPRO_FAULT("net.slow_peer")) {
    case testing::FaultAction::kNone:
      break;
    default:
      journal_shed(seq, fragments, new_states, "forced");
      return AckStatus::kShed;
  }
  if (opts_.admission == AdmissionPolicy::kBlock) {
    note_inflight(+1);
    if (!queue_.push(std::move(q))) {
      // Closed during teardown: nothing will consume it — account it.
      note_inflight(-1);
      journal_shed(seq, fragments, new_states, "closed");
      return AckStatus::kShed;
    }
  } else {
    while (!queue_.try_push(std::move(q))) {
      if (queue_.closed()) {
        journal_shed(seq, fragments, new_states, "closed");
        return AckStatus::kShed;
      }
      if (auto victim = queue_.try_pop()) {
        note_inflight(-1);
        journal_shed(victim->seq, victim->batch.fragments.size(),
                     victim->batch.new_states.size(), "oldest");
      }
    }
    note_inflight(+1);
  }
  ++stats_.admitted;
  if (plane_->opts_.obs)
    plane_->opts_.obs->metrics().counter("vapro.net.batches_admitted")->inc();
  return AckStatus::kAdmitted;
}

void TenantSession::journal_shed(std::uint64_t seq, std::size_t fragments,
                                 std::size_t new_states, const char* policy) {
  ++stats_.shed;
  set_degraded(true);
  if (plane_->opts_.obs)
    plane_->opts_.obs->metrics().counter("vapro.net.batches_shed")->inc();
  if (obs::Journal* j = opts_.server.obs ? opts_.server.obs->journal()
                                         : nullptr) {
    // "batch_seq", not "seq": the journal writes its own monotonic "seq"
    // key into every line, and a duplicate key would desync readers.
    j->emit("shed", /*window=*/static_cast<std::int64_t>(seq),
            plane_->clock()->now_seconds(),
            {obs::JournalField::str("tenant", opts_.name),
             obs::JournalField::num("batch_seq", seq),
             obs::JournalField::num("fragments",
                                    static_cast<std::uint64_t>(fragments)),
             obs::JournalField::num("new_states",
                                    static_cast<std::uint64_t>(new_states)),
             obs::JournalField::str("policy", policy)});
  }
}

void TenantSession::journal_net_drop(std::uint64_t seq, std::size_t fragments,
                                     const char* reason) {
  if (plane_->opts_.obs)
    plane_->opts_.obs->metrics().counter("vapro.net.batches_rejected")->inc();
  if (obs::Journal* j = opts_.server.obs ? opts_.server.obs->journal()
                                         : nullptr) {
    j->emit("net_drop", /*window=*/static_cast<std::int64_t>(seq),
            plane_->clock()->now_seconds(),
            {obs::JournalField::str("tenant", opts_.name),
             obs::JournalField::num("batch_seq", seq),
             obs::JournalField::num("fragments",
                                    static_cast<std::uint64_t>(fragments)),
             obs::JournalField::str("reason", reason)});
  }
}

void TenantSession::process(Queued q) {
  if (backend_group_) {
    backend_group_->process_window(std::move(q.batch));
    backend_group_->sync();
  } else {
    backend_server_->process_window(std::move(q.batch), q.drain_seconds);
    backend_server_->sync();
  }
  const bool drained = queue_.depth() == 0;
  note_inflight(-1);
  if (drained) set_degraded(false);
}

void TenantSession::consumer_loop() {
  while (auto q = queue_.pop()) process(std::move(*q));
}

void TenantSession::pump_all() {
  while (auto q = queue_.try_pop()) process(std::move(*q));
}

void TenantSession::sync() {
  if (!opts_.threaded) {
    pump_all();
  } else {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  if (backend_group_) backend_group_->sync();
  if (backend_server_) backend_server_->sync();
}

void TenantSession::note_inflight(int delta) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(inflight_) + delta);
    if (inflight_ == 0) inflight_cv_.notify_all();
  }
  plane_->note_inflight(delta);
}

void TenantSession::set_degraded(bool on) {
  if (degraded_.exchange(on, std::memory_order_relaxed) != on)
    plane_->note_degraded(on ? +1 : -1);
}

TenantStats TenantSession::stats() const {
  std::lock_guard<std::mutex> lock(seq_mu_);
  return stats_;
}

std::size_t TenantSession::windows_processed() const {
  return backend_group_ ? backend_group_->windows_processed()
                        : backend_server_->windows_processed();
}

std::size_t TenantSession::fragments_processed() const {
  return backend_group_ ? backend_group_->fragments_processed()
                        : backend_server_->fragments_processed();
}

void TenantSession::journal_detection_snapshot() const {
  if (backend_group_) {
    backend_group_->journal_detection_snapshot();
  } else {
    backend_server_->journal_detection_snapshot();
  }
}

// --- IngestPlane -----------------------------------------------------------

IngestPlane::IngestPlane(PlaneOptions opts)
    : opts_(opts), clock_(opts.clock ? opts.clock : util::real_clock()) {
  publish_static_gauges();
}

IngestPlane::~IngestPlane() = default;

TenantSession* IngestPlane::add_tenant(TenantOptions opts) {
  tenants_.push_back(std::make_unique<TenantSession>(std::move(opts), this));
  publish_static_gauges();
  return tenants_.back().get();
}

TenantSession* IngestPlane::find(const std::string& name) {
  for (auto& t : tenants_)
    if (t->name() == name) return t.get();
  return nullptr;
}

std::vector<std::string> IngestPlane::tenant_names() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& t : tenants_) names.push_back(t->name());
  return names;
}

void IngestPlane::sync_all() {
  for (auto& t : tenants_) t->sync();
}

std::uint64_t IngestPlane::shed_total() const {
  std::uint64_t total = 0;
  for (const auto& t : tenants_) total += t->stats().shed;
  return total;
}

void IngestPlane::note_degraded(int delta) {
  const int now = degraded_tenants_.fetch_add(delta) + delta;
  if (opts_.obs)
    opts_.obs->metrics().gauge("vapro.net.degraded")->set(now > 0 ? 1.0 : 0.0);
}

void IngestPlane::note_inflight(int delta) {
  const std::int64_t now = inflight_.fetch_add(delta) + delta;
  if (opts_.obs)
    opts_.obs->metrics()
        .gauge("vapro.net.queue_depth")
        ->set(static_cast<double>(now));
}

void IngestPlane::publish_static_gauges() {
  if (!opts_.obs) return;
  obs::MetricsRegistry& m = opts_.obs->metrics();
  m.gauge("vapro.net.tenants")->set(static_cast<double>(tenants_.size()));
  double capacity = 0.0;
  for (const auto& t : tenants_)
    capacity += static_cast<double>(t->queue_capacity());
  m.gauge("vapro.net.queue_capacity")->set(capacity);
  m.gauge("vapro.net.degraded")->set(degraded_tenants_.load() > 0 ? 1.0 : 0.0);
  m.gauge("vapro.net.queue_depth")
      ->set(static_cast<double>(inflight_.load()));
}

}  // namespace vapro::net
