// Tenant-keyed admission layer in front of the analysis servers — the
// session half of the ingest plane (ROADMAP item 2).
//
// A TenantSession owns one tenant's isolated analysis state (a single
// AnalysisServer, or a rank-sharded ServerGroup when `group_servers` > 1)
// plus a bounded admission queue between the transport and the analysis
// consumer.  Batches arrive tagged with a per-tenant sequence number and
// pass through three gates:
//
//   1. Dedup — a seq already applied or buffered acks kDuplicate without
//      re-admission, so a retransmit (after a torn frame, a reset
//      connection, or the net.dup_batch fault) can never double-count
//      fragments.
//   2. Reorder — out-of-order batches wait in a bounded reorder buffer
//      until the gap fills; batches are applied to the server strictly in
//      seq order, so socket-level reordering is invisible to analysis.  A
//      seq beyond the reorder window is refused outright (kRejected +
//      `net_drop` journal event) — the stream is too far desynced to heal.
//   3. Admission — kBlock propagates backpressure (the transport blocks,
//      the client's ack is delayed); kShedOldest keeps accepting but
//      evicts the oldest queued batch, journaling a `shed` event per
//      victim, bumping vapro.net.batches_shed, and flipping the
//      vapro.net.degraded gauge until the queue drains.  Detection keeps
//      running on what survives — overload degrades the data, never the
//      service.
//
// Every shed is accounted: per tenant,
//     submitted_unique == admitted + shed + rejected
//     server.fragments_processed == Σ fragments(admitted batches)
// which is exactly the invariant vapro_stress's faulted net equivalence
// run asserts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/client.hpp"
#include "src/core/server.hpp"
#include "src/core/server_group.hpp"
#include "src/net/wire.hpp"
#include "src/util/pipeline.hpp"

namespace vapro::net {

enum class AdmissionPolicy : std::uint8_t {
  kBlock,      // blocking backpressure: push waits for queue space
  kShedOldest, // shed the oldest queued window to admit the newest
};

struct TenantOptions {
  std::string name;
  int ranks = 1;
  // Options for the tenant's analysis server(s); `server.obs` is the
  // tenant's own ObsContext (journal isolation) and may differ from the
  // plane-level ObsContext holding the vapro.net.* metrics.
  core::ServerOptions server;
  // > 1 shards the tenant's ranks across a ServerGroup (fleet tier).
  int group_servers = 1;
  std::size_t queue_capacity = 4;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  // Max distance a batch may run ahead of the next expected seq and still
  // be buffered for in-order application.
  std::uint64_t reorder_window = 64;
  // False: no consumer thread; tests drive pump_all() manually.
  bool threaded = true;
};

struct TenantStats {
  std::uint64_t submitted = 0;   // submit() calls, including duplicates
  std::uint64_t admitted = 0;    // batches that reached the queue
  std::uint64_t duplicates = 0;  // deduped retransmits
  std::uint64_t shed = 0;        // journaled `shed` events
  std::uint64_t rejected = 0;    // journaled `net_drop` events
  std::uint64_t reordered = 0;   // batches that arrived ahead of a gap
};

class IngestPlane;

class TenantSession {
 public:
  TenantSession(TenantOptions opts, IngestPlane* plane);
  ~TenantSession();

  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;

  // Thread-safe (one transport connection at a time per tenant is the
  // expected shape, but nothing breaks with more).  The returned status is
  // the wire-level ack for THIS seq; sheds of other (older) batches are
  // visible through the journal and stats only.
  AckStatus submit(std::uint64_t seq, core::FragmentBatch batch,
                   double drain_seconds);

  // Blocks until every admitted batch has been fully analyzed, then syncs
  // the backend (threaded mode).  In manual mode, processes the backlog
  // inline.  After sync() all accessors reflect every admitted batch.
  void sync();

  // Manual mode: drain and analyze the queued backlog on the caller.
  void pump_all();

  const std::string& name() const { return opts_.name; }
  int ranks() const { return opts_.ranks; }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  TenantStats stats() const;
  std::size_t queue_depth() const { return queue_.depth(); }
  std::size_t queue_capacity() const { return queue_.capacity(); }

  // Backend views (exactly one is non-null).
  core::AnalysisServer* server() { return backend_server_.get(); }
  core::ServerGroup* group() { return backend_group_.get(); }
  std::size_t windows_processed() const;
  std::size_t fragments_processed() const;
  void journal_detection_snapshot() const;

 private:
  struct Queued {
    std::uint64_t seq = 0;
    double drain_seconds = 0.0;
    core::FragmentBatch batch;
  };

  // Applies the contiguous run starting at next_expected_; caller holds
  // seq_mu_.  Returns the admission outcome of `submitted_seq`.
  AckStatus apply_ready_locked(std::uint64_t submitted_seq);
  // Queues one in-order batch, shedding per policy; caller holds seq_mu_.
  AckStatus enqueue_locked(Queued q);
  void journal_shed(std::uint64_t seq, std::size_t fragments,
                    std::size_t new_states, const char* policy);
  void journal_net_drop(std::uint64_t seq, std::size_t fragments,
                        const char* reason);
  void process(Queued q);
  void consumer_loop();
  void set_degraded(bool on);
  void note_inflight(int delta);

  TenantOptions opts_;
  IngestPlane* plane_;  // borrowed; owns this session
  std::unique_ptr<core::AnalysisServer> backend_server_;
  std::unique_ptr<core::ServerGroup> backend_group_;
  util::BoundedQueue<Queued> queue_;

  mutable std::mutex seq_mu_;
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, Queued> pending_;  // reorder buffer, seq-ordered
  TenantStats stats_;

  // Admitted-but-unfinished batches; sync() waits for 0.  Incremented
  // before enqueue, decremented after analysis completes.
  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::uint64_t inflight_ = 0;

  std::atomic<bool> degraded_{false};
  std::thread consumer_;  // last member: starts after all state exists
};

struct PlaneOptions {
  // Plane-level telemetry: vapro.net.* counters/gauges land here.  May be
  // shared with a tenant's ObsContext (the single-tenant vapro_run shape)
  // or separate (the stress harness isolates tenant journals).  Null
  // disables.
  obs::ObsContext* obs = nullptr;
  // Time source for shed/net_drop journal timestamps and queue accounting.
  util::Clock* clock = nullptr;
};

// The set of tenant sessions one ingest endpoint serves.  add_tenant() is
// setup-phase only (not safe against concurrent submits); everything else
// is thread-safe.
class IngestPlane {
 public:
  explicit IngestPlane(PlaneOptions opts);
  ~IngestPlane();

  TenantSession* add_tenant(TenantOptions opts);
  TenantSession* find(const std::string& name);
  std::vector<std::string> tenant_names() const;

  void sync_all();
  // Any tenant currently shedding (set on shed, cleared when that tenant's
  // queue drains).  Mirrored by the vapro.net.degraded gauge; /readyz
  // turns 503 while true.
  bool degraded() const { return degraded_tenants_.load() > 0; }
  std::uint64_t shed_total() const;

  const PlaneOptions& options() const { return opts_; }
  util::Clock* clock() const { return clock_; }

 private:
  friend class TenantSession;
  void note_degraded(int delta);
  void note_inflight(int delta);
  void publish_static_gauges();

  PlaneOptions opts_;
  util::Clock* clock_;
  std::vector<std::unique_ptr<TenantSession>> tenants_;
  std::atomic<int> degraded_tenants_{0};
  std::atomic<std::int64_t> inflight_{0};
};

}  // namespace vapro::net
