#include "src/net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/testing/fault.hpp"
#include "src/util/socket.hpp"

namespace vapro::net {

bool IngestServer::start(int port, std::string* error) {
  if (running()) {
    if (error) *error = "ingest server already running";
    return false;
  }
  util::ignore_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error)
      *error = "port " + std::to_string(port) +
               " unavailable: " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) < 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void IngestServer::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    // Force every blocked recv to return so the reader threads exit.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) t.join();
  listen_fd_ = -1;
}

void IngestServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR) continue;
      break;  // listen socket is gone
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

bool IngestServer::reply(int fd, FrameType type, std::uint64_t seq,
                         const std::string& payload) {
  const std::string frame = encode_frame(type, seq, payload);
  if (!util::send_all(fd, frame.data(), frame.size())) {
    send_drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void IngestServer::handle_connection(int fd) {
  TenantSession* session = nullptr;
  for (;;) {
    std::uint8_t header_bytes[kFrameHeaderBytes];
    if (!util::recv_all(fd, header_bytes, sizeof(header_bytes))) break;
    FrameHeader header;
    std::string error;
    if (!decode_header(header_bytes, &header, &error)) {
      // Desynced stream: no way to find the next frame boundary — drop the
      // connection and let the client reconnect from a clean slate.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    std::string payload(header.payload_len, '\0');
    if (header.payload_len > 0 &&
        !util::recv_all(fd, payload.data(), payload.size()))
      break;
    if (header.type == FrameType::kBatch) {
      // A torn frame: the payload that arrived is not the payload that was
      // sent.  Corrupting one byte AFTER the read keeps the stream aligned
      // (we consumed exactly payload_len bytes) while making the CRC check
      // fail exactly as line noise would.
      switch (VAPRO_FAULT("net.frame_torn")) {
        case testing::FaultAction::kNone:
          break;
        default:
          if (!payload.empty()) payload[0] = static_cast<char>(payload[0] ^ 0xff);
          else header.payload_crc ^= 0xffffffffu;
          break;
      }
    }
    if (crc32(payload.data(), payload.size()) != header.payload_crc) {
      frames_torn_.fetch_add(1, std::memory_order_relaxed);
      // Recoverable: the stream is still frame-aligned, so ask for a
      // retransmit of exactly this seq.
      if (!reply(fd, FrameType::kNack, header.seq, std::string())) break;
      continue;
    }
    if (header.type == FrameType::kBye) break;
    if (header.type == FrameType::kHello) {
      HelloPayload hello;
      if (!decode_hello(payload, &hello, &error) ||
          hello.wire_version != kWireVersion) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        reply(fd, FrameType::kAck, header.seq,
              encode_ack(AckStatus::kRejected));
        break;
      }
      session = plane_->find(hello.tenant);
      if (!session) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        reply(fd, FrameType::kAck, header.seq,
              encode_ack(AckStatus::kRejected));
        break;
      }
      if (!reply(fd, FrameType::kAck, header.seq,
                 encode_ack(AckStatus::kAdmitted)))
        break;
      continue;
    }
    if (header.type != FrameType::kBatch || !session) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    core::FragmentBatch batch;
    double drain_seconds = 0.0;
    if (!decode_batch(payload, &batch, &drain_seconds, &error)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      if (!reply(fd, FrameType::kNack, header.seq, std::string())) break;
      continue;
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    const AckStatus status =
        session->submit(header.seq, std::move(batch), drain_seconds);
    // The idempotency proof: reset AFTER admission, BEFORE the ack.  The
    // client times out / sees EOF, reconnects, retransmits — and the
    // session layer must answer kDuplicate instead of double-counting.
    switch (VAPRO_FAULT("net.conn_reset")) {
      case testing::FaultAction::kNone:
        break;
      default:
        conn_resets_.fetch_add(1, std::memory_order_relaxed);
        ::shutdown(fd, SHUT_RDWR);
        goto done;
    }
    if (!reply(fd, FrameType::kAck, header.seq, encode_ack(status))) break;
  }
done:
  // Deregister before closing: stop() shutdown()s every fd still in
  // conn_fds_ under the same lock, and a closed fd number may be reused by
  // an unrelated socket immediately.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

}  // namespace vapro::net
