#include "src/net/wire.hpp"

#include <cstring>

#include "src/util/crc32.hpp"

namespace vapro::net {
namespace {

// --- little-endian primitives ---------------------------------------------
// memcpy through explicit byte shifts: endian-independent, alignment-safe,
// and free of the type-punning UB the ubsan CI job exists to catch.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xff));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    put_u8(out, static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    put_u8(out, static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}
void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}
void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}
void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

// Bounded cursor over a payload; every get_* checks remaining bytes so a
// truncated or hostile payload fails cleanly instead of reading past the
// buffer.
struct Cursor {
  const std::uint8_t* p;
  std::size_t len;
  std::size_t off = 0;
  bool ok = true;

  explicit Cursor(const std::string& s)
      : p(reinterpret_cast<const std::uint8_t*>(s.data())), len(s.size()) {}

  bool need(std::size_t n) {
    if (!ok || len - off < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[off++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(p[off]) |
        (static_cast<std::uint16_t>(p[off + 1]) << 8));
    off += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p[off + static_cast<std::size_t>(i)])
           << (8 * i);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(p[off + static_cast<std::size_t>(i)])
           << (8 * i);
    off += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string bytes(std::size_t n) {
    if (!need(n)) return std::string();
    std::string s(reinterpret_cast<const char*>(p + off), n);
    off += n;
    return s;
  }
  bool done() const { return ok && off == len; }
};

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

void put_args(std::string& out, const sim::CommArgs& a) {
  put_f64(out, a.bytes);
  put_i32(out, a.peer);
  put_i32(out, a.fd);
  put_i32(out, a.tag);
  put_f64(out, a.transfer_seconds);
}

void get_args(Cursor& c, sim::CommArgs* a) {
  a->bytes = c.f64();
  a->peer = c.i32();
  a->fd = c.i32();
  a->tag = c.i32();
  a->transfer_seconds = c.f64();
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kBatch: return "batch";
    case FrameType::kAck: return "ack";
    case FrameType::kNack: return "nack";
    case FrameType::kBye: return "bye";
  }
  return "?";
}

const char* ack_status_name(AckStatus s) {
  switch (s) {
    case AckStatus::kAdmitted: return "admitted";
    case AckStatus::kDuplicate: return "duplicate";
    case AckStatus::kShed: return "shed";
    case AckStatus::kRejected: return "rejected";
  }
  return "?";
}

std::uint32_t crc32(const void* data, std::size_t len) {
  // One shared table for every length-prefixed framing in the tree — the
  // binary journal segments (src/obs) use the same checksum.
  return util::crc32(data, len);
}

std::string encode_frame(FrameType type, std::uint64_t seq,
                         const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u8(out, 0);  // flags
  put_u64(out, seq);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

bool decode_header(const std::uint8_t* bytes, FrameHeader* out,
                   std::string* error) {
  std::string view(reinterpret_cast<const char*>(bytes), kFrameHeaderBytes);
  Cursor c(view);
  out->magic = c.u32();
  out->version = c.u16();
  const std::uint8_t type = c.u8();
  out->flags = c.u8();
  out->seq = c.u64();
  out->payload_len = c.u32();
  out->payload_crc = c.u32();
  if (out->magic != kWireMagic) return fail(error, "bad magic");
  if (out->version != kWireVersion)
    return fail(error, "unsupported wire version " +
                           std::to_string(out->version));
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kBye))
    return fail(error, "unknown frame type " + std::to_string(type));
  out->type = static_cast<FrameType>(type);
  if (out->flags != 0) return fail(error, "nonzero flags");
  if (out->payload_len > kMaxPayloadBytes)
    return fail(error, "oversized payload");
  return true;
}

std::string encode_hello(const HelloPayload& hello) {
  std::string out;
  put_u16(out, hello.wire_version);
  put_u16(out, static_cast<std::uint16_t>(hello.tenant.size()));
  out.append(hello.tenant);
  put_u32(out, hello.ranks);
  return out;
}

bool decode_hello(const std::string& payload, HelloPayload* out,
                  std::string* error) {
  Cursor c(payload);
  out->wire_version = c.u16();
  const std::uint16_t name_len = c.u16();
  out->tenant = c.bytes(name_len);
  out->ranks = c.u32();
  if (!c.done()) return fail(error, "malformed hello payload");
  return true;
}

std::string encode_batch(const core::FragmentBatch& batch,
                         double drain_seconds) {
  std::string out;
  // Rough size: fragments dominate; header fields below add ~90 bytes each.
  out.reserve(16 + batch.fragments.size() * 96 + batch.new_states.size() * 48);
  put_f64(out, drain_seconds);
  put_u32(out, static_cast<std::uint32_t>(batch.new_states.size()));
  for (const sim::InvocationInfo& info : batch.new_states) {
    put_i32(out, info.rank);
    put_u32(out, info.site);
    put_u8(out, static_cast<std::uint8_t>(info.kind));
    put_args(out, info.args);
    put_u32(out, static_cast<std::uint32_t>(info.path.size()));
    for (std::uint32_t frame : info.path) put_u32(out, frame);
    put_i64(out, info.truth_class_since_last);
    put_u8(out, info.statically_fixed_since_last ? 1 : 0);
  }
  put_u32(out, static_cast<std::uint32_t>(batch.fragments.size()));
  for (const core::FragmentView f : batch.fragments) {
    put_u8(out, static_cast<std::uint8_t>(f.kind()));
    put_i32(out, f.rank());
    put_u64(out, f.from());
    put_u64(out, f.to());
    put_f64(out, f.start_time());
    put_f64(out, f.end_time());
    // Sparse counter sample: (slot, value) pairs for non-zero slots only.
    // "Zero" means the all-zero BIT PATTERN, not numeric zero: -0.0 and the
    // rest of the weird doubles must survive the round trip bit-identical.
    const pmu::CounterSample& counters = f.counters();
    auto slot_active = [&counters](std::size_t i) {
      std::uint64_t bits;
      std::memcpy(&bits, &counters.values[i], sizeof(bits));
      return bits != 0;
    };
    std::uint8_t active = 0;
    for (std::size_t i = 0; i < pmu::kCounterCount; ++i)
      if (slot_active(i)) ++active;
    put_u8(out, active);
    for (std::size_t i = 0; i < pmu::kCounterCount; ++i) {
      if (!slot_active(i)) continue;
      put_u8(out, static_cast<std::uint8_t>(i));
      put_f64(out, counters.values[i]);
    }
    put_args(out, f.args());
    put_u8(out, static_cast<std::uint8_t>(f.op()));
    put_i64(out, f.truth_class());
  }
  return out;
}

bool decode_batch(const std::string& payload, core::FragmentBatch* out,
                  double* drain_seconds, std::string* error) {
  Cursor c(payload);
  out->new_states.clear();
  out->fragments.clear();
  const double drain = c.f64();
  const std::uint32_t n_states = c.u32();
  if (!c.ok || n_states > payload.size())
    return fail(error, "malformed batch payload (state count)");
  out->new_states.reserve(n_states);
  for (std::uint32_t i = 0; i < n_states; ++i) {
    sim::InvocationInfo info;
    info.rank = c.i32();
    info.site = c.u32();
    const std::uint8_t kind = c.u8();
    if (kind > static_cast<std::uint8_t>(sim::OpKind::kProbe))
      return fail(error, "malformed batch payload (op kind)");
    info.kind = static_cast<sim::OpKind>(kind);
    get_args(c, &info.args);
    const std::uint32_t depth = c.u32();
    if (!c.ok || depth > payload.size())
      return fail(error, "malformed batch payload (path depth)");
    info.path.reserve(depth);
    for (std::uint32_t d = 0; d < depth; ++d) info.path.push_back(c.u32());
    info.truth_class_since_last = c.i64();
    info.statically_fixed_since_last = c.u8() != 0;
    if (!c.ok) return fail(error, "malformed batch payload (truncated state)");
    out->new_states.push_back(std::move(info));
  }
  const std::uint32_t n_frags = c.u32();
  if (!c.ok || n_frags > payload.size())
    return fail(error, "malformed batch payload (fragment count)");
  out->fragments.reserve(n_frags);
  for (std::uint32_t i = 0; i < n_frags; ++i) {
    core::Fragment f;
    const std::uint8_t kind = c.u8();
    if (kind > static_cast<std::uint8_t>(core::FragmentKind::kIo))
      return fail(error, "malformed batch payload (fragment kind)");
    f.kind = static_cast<core::FragmentKind>(kind);
    f.rank = c.i32();
    f.from = c.u64();
    f.to = c.u64();
    f.start_time = c.f64();
    f.end_time = c.f64();
    const std::uint8_t active = c.u8();
    if (active > pmu::kCounterCount)
      return fail(error, "malformed batch payload (counter count)");
    for (std::uint8_t s = 0; s < active; ++s) {
      const std::uint8_t slot = c.u8();
      const double value = c.f64();
      if (slot >= pmu::kCounterCount)
        return fail(error, "malformed batch payload (counter slot)");
      f.counters.values[slot] = value;
    }
    get_args(c, &f.args);
    const std::uint8_t op = c.u8();
    if (op > static_cast<std::uint8_t>(sim::OpKind::kProbe))
      return fail(error, "malformed batch payload (fragment op)");
    f.op = static_cast<sim::OpKind>(op);
    f.truth_class = c.i64();
    if (!c.ok)
      return fail(error, "malformed batch payload (truncated fragment)");
    out->fragments.push_back(f);
  }
  if (!c.done()) return fail(error, "malformed batch payload (trailing bytes)");
  if (drain_seconds) *drain_seconds = drain;
  return true;
}

std::string encode_ack(AckStatus status) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(status));
  return out;
}

bool decode_ack(const std::string& payload, AckStatus* out,
                std::string* error) {
  Cursor c(payload);
  const std::uint8_t status = c.u8();
  if (!c.done() || status > static_cast<std::uint8_t>(AckStatus::kRejected))
    return fail(error, "malformed ack payload");
  *out = static_cast<AckStatus>(status);
  return true;
}

}  // namespace vapro::net
