#include "src/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "src/testing/fault.hpp"
#include "src/util/clock.hpp"
#include "src/util/socket.hpp"

namespace vapro::net {

namespace {
enum class Await { kAck, kNack, kConnLost };
}

IngestClient::IngestClient(ClientOptions opts) : opts_(std::move(opts)) {}

IngestClient::~IngestClient() { close(); }

bool IngestClient::connect(std::string* error) {
  return connect_locked(error);
}

bool IngestClient::connect_locked(std::string* error) {
  if (fd_ >= 0) return true;
  util::ignore_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // Bound every ack wait: a wedged server surfaces as EAGAIN on recv, and
  // the retry loop takes over.  (Real time — fault-driven tests never hit
  // it because a live server always answers.)
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(opts_.recv_timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (opts_.recv_timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error) *error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  HelloPayload hello;
  hello.tenant = opts_.tenant;
  hello.ranks = opts_.ranks;
  const std::string frame =
      encode_frame(FrameType::kHello, /*seq=*/0, encode_hello(hello));
  if (!util::send_all(fd, frame.data(), frame.size())) {
    if (error) *error = "hello send failed";
    ::close(fd);
    return false;
  }
  fd_ = fd;
  AckStatus status = AckStatus::kRejected;
  std::string ack_error;
  if (!await_ack(0, &status, &ack_error) ||
      status != AckStatus::kAdmitted) {
    if (error)
      *error = status == AckStatus::kRejected && ack_error.empty()
                   ? "tenant rejected: " + opts_.tenant
                   : "hello failed: " + ack_error;
    disconnect();
    return false;
  }
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  return true;
}

void IngestClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool IngestClient::await_ack(std::uint64_t seq, AckStatus* status,
                             std::string* error) {
  for (;;) {
    std::uint8_t header_bytes[kFrameHeaderBytes];
    if (!util::recv_all(fd_, header_bytes, sizeof(header_bytes))) {
      if (error) *error = "connection lost awaiting ack";
      return false;
    }
    FrameHeader header;
    std::string decode_error;
    if (!decode_header(header_bytes, &header, &decode_error)) {
      if (error) *error = "desynced stream: " + decode_error;
      return false;
    }
    std::string payload(header.payload_len, '\0');
    if (header.payload_len > 0 &&
        !util::recv_all(fd_, payload.data(), payload.size())) {
      if (error) *error = "connection lost awaiting ack payload";
      return false;
    }
    if (header.seq != seq) continue;  // stale reply for an earlier frame
    if (header.type == FrameType::kNack) {
      if (error) *error = "nack";
      *status = AckStatus::kRejected;
      return true;
    }
    if (header.type != FrameType::kAck ||
        !decode_ack(payload, status, &decode_error)) {
      if (error) *error = "malformed reply";
      return false;
    }
    if (error) error->clear();
    return true;
  }
}

void IngestClient::backoff(int attempt) {
  double delay = opts_.retry.backoff_seconds;
  for (int i = 1; i < attempt; ++i) delay *= opts_.retry.multiplier;
  delay = std::min(delay, opts_.retry.max_backoff_seconds);
  if (opts_.sleep_fn)
    opts_.sleep_fn(delay);
  else
    util::real_clock()->sleep_for(delay);
}

bool IngestClient::transmit(const std::string& frame, std::uint64_t seq,
                            std::string* error) {
  std::string last_error;
  for (int attempt = 1; attempt <= opts_.retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.retries;
      backoff(attempt - 1);
    }
    if (!connect_locked(&last_error)) continue;
    ++stats_.frames_sent;
    if (!util::send_all(fd_, frame.data(), frame.size())) {
      last_error = "send failed";
      disconnect();
      continue;
    }
    AckStatus status = AckStatus::kRejected;
    std::string ack_error;
    if (!await_ack(seq, &status, &ack_error)) {
      // EOF / reset / timeout: the ack may have been lost AFTER admission
      // — reconnect and retransmit; the session dedups if so.
      last_error = ack_error;
      disconnect();
      continue;
    }
    if (ack_error == "nack") {
      // Frame arrived torn but the stream is intact: resend, same socket.
      last_error = "nack for seq " + std::to_string(seq);
      continue;
    }
    switch (status) {
      case AckStatus::kAdmitted: ++stats_.acks_admitted; break;
      case AckStatus::kDuplicate: ++stats_.acks_duplicate; break;
      case AckStatus::kShed: ++stats_.acks_shed; break;
      case AckStatus::kRejected:
        if (error) *error = "batch rejected by server";
        return false;
    }
    return true;
  }
  if (error) *error = "exhausted retries: " + last_error;
  return false;
}

bool IngestClient::send_batch(const core::FragmentBatch& batch,
                              double drain_seconds, std::string* error) {
  const std::uint64_t seq = next_seq_++;
  ++stats_.batches_sent;
  const std::string frame =
      encode_frame(FrameType::kBatch, seq, encode_batch(batch, drain_seconds));
  // net.reorder: delay this frame past its successor — the wire-visible
  // effect of a rerouted packet.  At most one frame is held at a time, and
  // flush() delivers a frame held at end of stream.
  switch (VAPRO_FAULT("net.reorder")) {
    case testing::FaultAction::kNone:
      break;
    default:
      if (held_frame_.empty()) {
        held_frame_ = frame;
        held_seq_ = seq;
        ++stats_.reordered_sends;
        return true;
      }
      break;
  }
  bool ok = transmit(frame, seq, error);
  if (!held_frame_.empty()) {
    const std::string held = std::move(held_frame_);
    held_frame_.clear();
    std::string held_error;
    if (!transmit(held, held_seq_, &held_error)) {
      ++stats_.send_failures;
      if (error && ok) *error = "held frame: " + held_error;
      ok = false;
    }
  }
  if (ok) {
    // net.dup_batch: a retransmit race — the ack was in flight while a
    // timeout-driven resend went out.  The server must dedup.
    switch (VAPRO_FAULT("net.dup_batch")) {
      case testing::FaultAction::kNone:
        break;
      default:
        ++stats_.dup_batches_sent;
        transmit(frame, seq, nullptr);
        break;
    }
  } else {
    ++stats_.send_failures;
  }
  return ok;
}

bool IngestClient::flush(std::string* error) {
  if (held_frame_.empty()) return true;
  const std::string held = std::move(held_frame_);
  held_frame_.clear();
  if (!transmit(held, held_seq_, error)) {
    ++stats_.send_failures;
    return false;
  }
  return true;
}

void IngestClient::close() {
  flush(nullptr);
  if (fd_ >= 0) {
    const std::string bye = encode_frame(FrameType::kBye, next_seq_, "");
    util::send_all(fd_, bye.data(), bye.size());
    disconnect();
  }
}

}  // namespace vapro::net
