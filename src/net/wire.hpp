// Vapro ingest wire protocol v1 — no-deps binary framing for fragment
// batches over sockets (ROADMAP item 2; the exposition server proved the
// socket idiom, this is the data plane).
//
// Every frame is a fixed 24-byte header followed by `payload_len` bytes:
//
//   offset  size  field        notes
//   ------  ----  -----------  ------------------------------------------
//   0       4     magic        0x5650524F ("VPRO"), little-endian
//   4       2     version      wire schema version, currently 1
//   6       1     type         FrameType below
//   7       1     flags        reserved, must be 0
//   8       8     seq          per-tenant batch sequence number
//   16      4     payload_len  bytes following the header
//   20      4     payload_crc  CRC-32 (IEEE 802.3) over the payload
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern in a u64, so a decoded batch is BIT-IDENTICAL to the encoded one
// — the property the net-transport equivalence harness asserts end to end.
//
// Frame types:
//   kHello  client → server, once per connection: wire version + tenant
//           name + rank count.  Acked (or nacked: unknown tenant / version
//           mismatch, then the server closes).
//   kBatch  client → server: one FragmentBatch plus its drain timestamp.
//           Acked with an AckStatus; a CRC mismatch gets a kNack carrying
//           the header's seq so the client can retransmit exactly that
//           batch.
//   kAck    server → client: 1-byte AckStatus payload.
//   kNack   server → client: empty payload; "resend seq".
//   kBye    client → server: clean shutdown, no reply.
//
// Idempotency contract: `seq` starts at 0 per (tenant, stream) and
// increases by 1 per unique batch.  Retransmits reuse the original seq, so
// the session layer can dedup (kDuplicate ack) instead of double-counting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/client.hpp"

namespace vapro::net {

inline constexpr std::uint32_t kWireMagic = 0x5650524Fu;  // "VPRO"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;
// Upper bound on a sane payload; anything larger is a protocol error (a
// desynced or hostile peer), not a batch.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kBatch = 2,
  kAck = 3,
  kNack = 4,
  kBye = 5,
};

enum class AckStatus : std::uint8_t {
  kAdmitted = 0,   // queued (or buffered for in-order application)
  kDuplicate = 1,  // seq already seen — retransmit deduped
  kShed = 2,       // admission shed this batch; journaled as `shed`
  kRejected = 3,   // protocol-level refusal (unknown tenant, bad version)
};

const char* frame_type_name(FrameType t);
const char* ack_status_name(AckStatus s);

struct FrameHeader {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  FrameType type = FrameType::kBye;
  std::uint8_t flags = 0;
  std::uint64_t seq = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), the classic table-driven
// form.  crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(const void* data, std::size_t len);

// --- frame codec -----------------------------------------------------------

// Serializes header + payload into one contiguous buffer ready to send.
std::string encode_frame(FrameType type, std::uint64_t seq,
                         const std::string& payload);

// Parses a 24-byte header.  False (with `error` set) on bad magic, version,
// unknown type, nonzero flags, or oversized payload_len — all of which mean
// the stream is desynced and the connection must drop.
bool decode_header(const std::uint8_t* bytes, FrameHeader* out,
                   std::string* error);

// --- payload codecs --------------------------------------------------------

struct HelloPayload {
  std::uint16_t wire_version = kWireVersion;
  std::string tenant;
  std::uint32_t ranks = 0;
};

std::string encode_hello(const HelloPayload& hello);
bool decode_hello(const std::string& payload, HelloPayload* out,
                  std::string* error);

// Batch payload: drain_seconds (f64) then the FragmentBatch.  Counter
// samples are run-length-trimmed (only non-zero slots travel), since most
// of the 17 counter slots are inactive in any given PMU programming.
std::string encode_batch(const core::FragmentBatch& batch,
                         double drain_seconds);
bool decode_batch(const std::string& payload, core::FragmentBatch* out,
                  double* drain_seconds, std::string* error);

std::string encode_ack(AckStatus status);
bool decode_ack(const std::string& payload, AckStatus* out,
                std::string* error);

}  // namespace vapro::net
