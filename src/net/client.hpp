// IngestClient — the sending half of the ingest plane.
//
// One client speaks for one tenant stream: connect() opens a loopback TCP
// connection and performs the kHello handshake; send_batch() assigns the
// next sequence number, encodes the batch, and runs the reliability loop:
//
//   send frame → await ack/nack (SO_RCVTIMEO-bounded) →
//     ack   : done (kAdmitted / kDuplicate / kShed all count as delivered —
//             the server has durably decided this seq's fate)
//     nack  : retransmit the same seq after a backoff sleep
//     EOF / reset / timeout: reconnect (re-hello) and retransmit
//
// Retries are bounded (RetryPolicy::max_attempts) with exponential backoff
// (base * multiplier^attempt, capped).  Backoff sleeps go through an
// injectable hook so deterministic tests never really sleep — and never
// touch the shared VirtualClock that analysis timing runs on.
//
// Because retransmits reuse the original seq, at-least-once delivery plus
// the session layer's dedup gives exactly-once APPLICATION — the property
// the deduped-retransmit stress test asserts by fragment accounting.
//
// Client-side hazard sites:
//   net.dup_batch — after a successful ack, the frame is sent once more
//     (a retransmit race); the duplicate must ack kDuplicate.
//   net.reorder — the frame is held back and sent after its successor
//     (socket-level reordering); the session's reorder buffer restores
//     seq order before application.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/client.hpp"
#include "src/net/wire.hpp"

namespace vapro::net {

struct RetryPolicy {
  int max_attempts = 5;            // total tries per frame, including the first
  double backoff_seconds = 0.05;   // sleep before retry #1
  double multiplier = 2.0;         // exponential growth per retry
  double max_backoff_seconds = 1.0;
};

struct ClientStats {
  std::uint64_t batches_sent = 0;    // unique seqs handed to send_batch
  std::uint64_t frames_sent = 0;     // wire-level batch frames (incl. resends)
  std::uint64_t retries = 0;         // nack/timeout-triggered retransmits
  std::uint64_t reconnects = 0;      // connections re-established mid-stream
  std::uint64_t acks_admitted = 0;
  std::uint64_t acks_duplicate = 0;  // retransmits the server deduped
  std::uint64_t acks_shed = 0;       // batches the server shed at admission
  std::uint64_t dup_batches_sent = 0;   // net.dup_batch firings
  std::uint64_t reordered_sends = 0;    // net.reorder firings
  std::uint64_t send_failures = 0;   // batches abandoned after max_attempts
};

struct ClientOptions {
  int port = 0;                  // ingest server port (loopback)
  std::string tenant;
  std::uint32_t ranks = 0;
  double recv_timeout_seconds = 5.0;  // real-time ack wait bound
  RetryPolicy retry;
  // Backoff sleep hook; null = sleep on the real clock.  Deterministic
  // harnesses install a no-op so retries never advance any clock.
  std::function<void(double)> sleep_fn;
};

class IngestClient {
 public:
  explicit IngestClient(ClientOptions opts);
  ~IngestClient();
  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  // Connects and performs the hello handshake.  False (with `error`) when
  // the server is unreachable or rejects the tenant.
  bool connect(std::string* error = nullptr);

  // Assigns the next seq and delivers the batch (or holds it under the
  // net.reorder fault — it is delivered before the NEXT batch's ack).
  // False when every attempt failed; the batch is counted in
  // send_failures and the stream continues with the next seq.
  bool send_batch(const core::FragmentBatch& batch, double drain_seconds,
                  std::string* error = nullptr);

  // Delivers any held (reordered) frame.  Call before reading reports.
  bool flush(std::string* error = nullptr);

  // Sends kBye and closes.  Implicit in the destructor.
  void close();

  bool connected() const { return fd_ >= 0; }
  const ClientStats& stats() const { return stats_; }
  std::uint64_t next_seq() const { return next_seq_; }

 private:
  bool connect_locked(std::string* error);
  // The reliability loop for one encoded frame.  `expect_status`: the ack
  // status is recorded in stats but any ack completes the attempt.
  bool transmit(const std::string& frame, std::uint64_t seq,
                std::string* error);
  bool await_ack(std::uint64_t seq, AckStatus* status, std::string* error);
  void backoff(int attempt);
  void disconnect();

  ClientOptions opts_;
  int fd_ = -1;
  bool ever_connected_ = false;
  std::uint64_t next_seq_ = 0;
  std::string held_frame_;   // net.reorder: frame delayed past its successor
  std::uint64_t held_seq_ = 0;
  ClientStats stats_;
};

}  // namespace vapro::net
