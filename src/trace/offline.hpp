// Offline analysis of a recorded trace: the same client + server pipeline
// as the live VaproSession, but fed from a Trace.  Lets users sweep
// analysis knobs (thresholds, STG mode, proxies) over one recorded run.
#pragma once

#include <memory>

#include "src/core/client.hpp"
#include "src/core/server.hpp"
#include "src/trace/trace.hpp"

namespace vapro::trace {

struct OfflineOptions {
  core::StgMode stg_mode = core::StgMode::kContextFree;
  core::ClusterOptions cluster;
  core::DiagnosisOptions diagnosis;
  pmu::MachineParams machine;
  double variance_threshold = 0.85;
  double bin_seconds = 0.25;
  double window_seconds = 1.0;
  int analysis_threads = 1;
  // Analysis pipeline depth (ServerOptions::pipeline_depth); replay drains
  // window N+1 while window N is analyzed.  1 = synchronous.
  int pipeline_depth = 1;
  // Carry cluster seeds across windows (ServerOptions::cluster_seed_cache).
  bool cluster_seed_cache = false;
  bool run_diagnosis = true;
  bool record_eval_pairs = false;
  int pmu_budget = 4;
  // Offline reads are replays of recorded values: no extra jitter.
  double pmu_jitter = 0.0;
  std::uint64_t seed = 42;
  // Self-telemetry (src/obs) for the replayed pipeline; null disables.
  obs::ObsContext* obs = nullptr;
};

class OfflineSession {
 public:
  // Analyzes `trace` immediately; results are ready after construction.
  OfflineSession(const Trace& trace, OfflineOptions opts);

  const core::AnalysisServer& server() const { return *server_; }
  const core::Heatmap& computation_map() const {
    return server_->computation_map();
  }
  std::vector<core::VarianceRegion> locate(core::FragmentKind kind) const {
    return server_->locate(kind);
  }
  const core::DiagnosisReport& diagnosis() const {
    return server_->diagnosis();
  }
  const core::CoverageAccumulator& coverage() const {
    return server_->coverage();
  }
  std::uint64_t fragments_recorded() const {
    return client_->fragments_recorded();
  }

 private:
  std::unique_ptr<core::VaproClient> client_;
  std::unique_ptr<core::AnalysisServer> server_;
};

}  // namespace vapro::trace
