#include "src/trace/offline.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace vapro::trace {

OfflineSession::OfflineSession(const Trace& trace, OfflineOptions opts) {
  // The rank count is whatever the trace contains.
  int max_rank = 0;
  for (const TraceEvent& ev : trace.events())
    max_rank = std::max(max_rank, ev.info.rank);
  const int ranks = max_rank + 1;

  core::ClientOptions copts;
  copts.stg_mode = opts.stg_mode;
  copts.pmu_budget = opts.pmu_budget;
  copts.pmu_jitter = opts.pmu_jitter;
  copts.seed = opts.seed;
  copts.obs = opts.obs;
  client_ = std::make_unique<core::VaproClient>(ranks, copts);

  core::ServerOptions sopts;
  sopts.stg_mode = opts.stg_mode;
  sopts.cluster = opts.cluster;
  sopts.diagnosis = opts.diagnosis;
  sopts.machine = opts.machine;
  sopts.variance_threshold = opts.variance_threshold;
  sopts.bin_seconds = opts.bin_seconds;
  sopts.analysis_threads = opts.analysis_threads;
  sopts.pipeline_depth = opts.pipeline_depth;
  sopts.cluster_seed_cache = opts.cluster_seed_cache;
  sopts.run_diagnosis = opts.run_diagnosis;
  sopts.record_eval_pairs = opts.record_eval_pairs;
  sopts.obs = opts.obs;
  server_ = std::make_unique<core::AnalysisServer>(ranks, sopts);

  client_->configure_counters(server_->counters_needed());
  TraceReplayer replayer(trace);
  const bool sync_for_pmu = opts.run_diagnosis;
  replayer.replay_windowed(
      *client_, opts.window_seconds, [this, sync_for_pmu](double) {
        server_->process_window(client_->drain());
        // Same PMU feedback rule as the live session: reprogramming must
        // observe the analyzed window when diagnosis drives the counters.
        if (sync_for_pmu) server_->sync();
        client_->configure_counters(server_->counters_needed());
      });
  // Results are promised ready after construction.
  server_->sync();
}

}  // namespace vapro::trace
