#include "src/trace/trace.hpp"

#include <cstring>
#include <fstream>

#include "src/util/check.hpp"

namespace vapro::trace {

namespace {

constexpr std::uint32_t kMagic = 0x56505254;  // "VPRT"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T take(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  VAPRO_CHECK_MSG(in.good(), "truncated trace file");
  return v;
}

// Serialized size of one event (fixed part + path payload).
std::size_t event_bytes(const TraceEvent& ev) {
  return 1 /*kind*/ + 8 /*time*/ + 4 /*rank*/ + 4 /*site*/ + 1 /*op*/ +
         8 * 4 /*args*/ + 8 /*truth*/ + 1 /*static flag*/ +
         4 + 4 * ev.info.path.size() /*path*/ +
         8 * pmu::kCounterCount /*counters*/;
}

}  // namespace

std::size_t Trace::byte_size() const {
  std::size_t total = 12;  // header
  for (const TraceEvent& ev : events_) total += event_bytes(ev);
  return total;
}

void Trace::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  VAPRO_CHECK_MSG(out.good(), "cannot open trace file " << path);
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint32_t>(events_.size()));
  for (const TraceEvent& ev : events_) {
    put(out, static_cast<std::uint8_t>(ev.kind));
    put(out, ev.time);
    put(out, static_cast<std::int32_t>(ev.info.rank));
    put(out, ev.info.site);
    put(out, static_cast<std::uint8_t>(ev.info.kind));
    put(out, ev.info.args.bytes);
    put(out, static_cast<std::int64_t>(ev.info.args.peer));
    put(out, static_cast<std::int64_t>(ev.info.args.fd));
    put(out, static_cast<std::int64_t>(ev.info.args.tag));
    put(out, ev.info.args.transfer_seconds);
    put(out, ev.info.truth_class_since_last);
    put(out, static_cast<std::uint8_t>(ev.info.statically_fixed_since_last));
    put(out, static_cast<std::uint32_t>(ev.info.path.size()));
    for (std::uint32_t frame : ev.info.path) put(out, frame);
    for (double v : ev.ground_truth.values) put(out, v);
  }
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VAPRO_CHECK_MSG(in.good(), "cannot open trace file " << path);
  VAPRO_CHECK_MSG(take<std::uint32_t>(in) == kMagic, "not a vapro trace");
  VAPRO_CHECK_MSG(take<std::uint32_t>(in) == kVersion,
                  "unsupported trace version");
  const auto count = take<std::uint32_t>(in);
  Trace trace;
  for (std::uint32_t i = 0; i < count; ++i) {
    TraceEvent ev;
    ev.kind = static_cast<EventKind>(take<std::uint8_t>(in));
    ev.time = take<double>(in);
    ev.info.rank = take<std::int32_t>(in);
    ev.info.site = take<sim::CallSiteId>(in);
    ev.info.kind = static_cast<sim::OpKind>(take<std::uint8_t>(in));
    ev.info.args.bytes = take<double>(in);
    ev.info.args.peer = static_cast<int>(take<std::int64_t>(in));
    ev.info.args.fd = static_cast<int>(take<std::int64_t>(in));
    ev.info.args.tag = static_cast<int>(take<std::int64_t>(in));
    ev.info.args.transfer_seconds = take<double>(in);
    ev.info.truth_class_since_last = take<std::int64_t>(in);
    ev.info.statically_fixed_since_last = take<std::uint8_t>(in) != 0;
    const auto frames = take<std::uint32_t>(in);
    VAPRO_CHECK_MSG(frames < (1u << 20), "implausible path length");
    ev.info.path.resize(frames);
    for (std::uint32_t f = 0; f < frames; ++f)
      ev.info.path[f] = take<std::uint32_t>(in);
    for (double& v : ev.ground_truth.values) v = take<double>(in);
    trace.append(std::move(ev));
  }
  return trace;
}

void TraceWriter::on_call_begin(const sim::InvocationInfo& info, double time,
                                const pmu::CounterSample& gt) {
  trace_.append(TraceEvent{EventKind::kCallBegin, time, info, gt});
  if (tee_) tee_->on_call_begin(info, time, gt);
}

void TraceWriter::on_call_end(const sim::InvocationInfo& info, double time,
                              const pmu::CounterSample& gt) {
  trace_.append(TraceEvent{EventKind::kCallEnd, time, info, gt});
  if (tee_) tee_->on_call_end(info, time, gt);
}

void TraceWriter::on_program_end(sim::RankId rank, double time) {
  TraceEvent ev;
  ev.kind = EventKind::kProgramEnd;
  ev.time = time;
  ev.info.rank = rank;
  trace_.append(std::move(ev));
  if (tee_) tee_->on_program_end(rank, time);
}

void TraceReplayer::dispatch(const TraceEvent& ev, sim::Interceptor& sink) {
  switch (ev.kind) {
    case EventKind::kCallBegin:
      sink.on_call_begin(ev.info, ev.time, ev.ground_truth);
      break;
    case EventKind::kCallEnd:
      sink.on_call_end(ev.info, ev.time, ev.ground_truth);
      break;
    case EventKind::kProgramEnd:
      sink.on_program_end(ev.info.rank, ev.time);
      break;
  }
}

void TraceReplayer::replay(sim::Interceptor& sink) const {
  for (const TraceEvent& ev : trace_.events()) dispatch(ev, sink);
}

}  // namespace vapro::trace
