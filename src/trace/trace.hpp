// Event tracing and offline replay.
//
// The paper's related work dismisses full tracing for production use
// because of its "prohibitive data volume" (§7) — this module exists to
// (a) make that comparison measurable (bench/trace_volume) and (b) support
// the workflow a deployed tool needs anyway: record one run's interception
// stream, then re-analyze it offline under different knobs (thresholds,
// STG mode, sampling) without re-running the application.
//
//   TraceWriter   — an Interceptor that records every event (optionally
//                   teeing into another Interceptor so Vapro can run live
//                   at the same time).
//   Trace         — the event container; binary save/load.
//   TraceReplayer — streams a Trace back into any Interceptor.
//   OfflineSession— client + analysis server driven from a Trace with
//                   windowing identical to the live VaproSession.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/intercept.hpp"

namespace vapro::trace {

enum class EventKind : std::uint8_t { kCallBegin, kCallEnd, kProgramEnd };

struct TraceEvent {
  EventKind kind = EventKind::kCallBegin;
  double time = 0.0;
  sim::InvocationInfo info;          // empty for kProgramEnd
  pmu::CounterSample ground_truth;   // cumulative at the event instant
};

class Trace {
 public:
  void append(TraceEvent event) { events_.push_back(std::move(event)); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // Serialized size: what a tracing tool would have to move/store.
  std::size_t byte_size() const;

  // Binary round trip.  The format is versioned and self-contained;
  // load() dies on a malformed file (VAPRO_CHECK).
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

 private:
  std::vector<TraceEvent> events_;
};

// Records everything it sees; optionally forwards to `tee` so another tool
// can consume the same stream live.
class TraceWriter final : public sim::Interceptor {
 public:
  explicit TraceWriter(sim::Interceptor* tee = nullptr) : tee_(tee) {}

  bool wants_call_path() const override {
    // Record paths so an offline context-aware analysis stays possible.
    return true;
  }
  void on_call_begin(const sim::InvocationInfo& info, double time,
                     const pmu::CounterSample& gt) override;
  void on_call_end(const sim::InvocationInfo& info, double time,
                   const pmu::CounterSample& gt) override;
  void on_program_end(sim::RankId rank, double time) override;

  const Trace& trace() const { return trace_; }
  Trace take() { return std::move(trace_); }

 private:
  Trace trace_;
  sim::Interceptor* tee_;
};

// Streams a trace (already time-ordered, as recorded) into a sink.
class TraceReplayer {
 public:
  explicit TraceReplayer(const Trace& trace) : trace_(trace) {}

  // Replays everything.
  void replay(sim::Interceptor& sink) const;

  // Replays with a window callback invoked every `window_seconds` of trace
  // time (and once at the end) — the offline equivalent of the simulator's
  // periodic analysis ticks.
  template <typename WindowFn>
  void replay_windowed(sim::Interceptor& sink, double window_seconds,
                       WindowFn&& on_window) const {
    double next_flush = window_seconds;
    for (const TraceEvent& ev : trace_.events()) {
      while (ev.time >= next_flush) {
        on_window(next_flush);
        next_flush += window_seconds;
      }
      dispatch(ev, sink);
    }
    on_window(next_flush);
  }

 private:
  static void dispatch(const TraceEvent& ev, sim::Interceptor& sink);
  const Trace& trace_;
};

}  // namespace vapro::trace
